#include "kde/engine.h"

#include <algorithm>
#include <cmath>

namespace fkde {

KdeEngine::KdeEngine(DeviceSample* sample, KernelType kernel)
    : sample_(sample), kernel_(kernel) {
  // The backend's fused loops size their stack arrays to the same ceiling.
  static_assert(kMaxDims == kb::kMaxDims);
  FKDE_CHECK(sample != nullptr);
  FKDE_CHECK_MSG(!sample->empty(), "engine requires a loaded sample");
  FKDE_CHECK_MSG(sample->dims() <= kMaxDims, "dims beyond engine limit");
  const std::size_t d = sample_->dims();
  shards_.resize(sample_->num_shards());
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    EngineShard& sh = shards_[si];
    sh.device = sample_->shard_device(si);
    // Resolve the profile's requested backend against CPU capability and
    // the FKDE_KERNEL_BACKEND / FKDE_KERNEL_PRECISION overrides, once.
    sh.backend = ResolveKernelBackend(sh.device->profile().kernel_backend);
    sh.precision =
        ResolveKernelPrecision(sh.device->profile().kernel_precision);
    // Simd shards read dim-major strips; mirror the shard before the
    // Scott pass below touches it.
    if (sh.backend == KernelBackend::kSimd) sample_->EnableSoaMirror(si);
    sh.bandwidth_dev = sh.device->CreateBuffer<double>(d);
    sh.point_scales = sh.device->CreateBuffer<float>(sample_->capacity());
    // Slot 0 hosts every classic synchronous pass; EnableStreaming grows
    // the ring.
    sh.slots.resize(1);
    AllocateSlot(sh, &sh.slots[0]);
  }
  bounds_staging_.resize(1);
  bounds_staging_[0].resize(2 * d);
  FKDE_CHECK_OK(SetBandwidth(ComputeScottBandwidth()));
}

void KdeEngine::AllocateSlot(EngineShard& sh, ShardSlot* slot) const {
  const std::size_t d = sample_->dims();
  const std::size_t capacity = sample_->capacity();
  slot->bounds_dev = sh.device->CreateBuffer<double>(2 * d);
  // Capacity-sized so rebalancing growth never reallocates under
  // enqueued commands that captured the raw device pointers.
  slot->contributions = sh.device->CreateBuffer<double>(capacity);
  slot->grad_partials = sh.device->CreateBuffer<double>(d * capacity);
  slot->grad_sums = sh.device->CreateBuffer<double>(d);
  slot->est_sum = sh.device->CreateBuffer<double>(1);
  // Sized once so enqueued gradient read-backs never race a
  // reallocation.
  slot->grad_staging.resize(d);
}

KdeEngine::~KdeEngine() {
  // Commands enqueued through this engine capture pointers into its
  // device buffers; drain every shard's queue before the buffers go away.
  for (EngineShard& sh : shards_) sh.device->default_queue()->Finish();
}

Status KdeEngine::SetBandwidth(std::span<const double> bandwidth) {
  if (bandwidth.size() != dims()) {
    return Status::InvalidArgument("bandwidth arity mismatch");
  }
  for (double h : bandwidth) {
    if (!(h > 0.0) || !std::isfinite(h)) {
      return Status::InvalidArgument("bandwidth entries must be positive");
    }
  }
  bandwidth_.assign(bandwidth.begin(), bandwidth.end());
  for (EngineShard& sh : shards_) {
    sh.device->CopyToDevice(bandwidth_.data(), bandwidth_.size(),
                            &sh.bandwidth_dev);
  }
  return Status::OK();
}

Status KdeEngine::SetPointScales(std::span<const double> scales) {
  if (scales.size() != sample_size()) {
    return Status::InvalidArgument("point scale arity mismatch");
  }
  for (double scale : scales) {
    if (!(scale > 0.0) || !std::isfinite(scale)) {
      return Status::InvalidArgument("point scales must be positive");
    }
  }
  scales_host_.assign(scales.begin(), scales.end());
  has_scales_ = true;
  UploadScales();
  return Status::OK();
}

void KdeEngine::UploadScales() {
  // Scatter the global-slot scales into each shard's local order (one
  // metered transfer per shard).
  std::vector<float> staging;
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    const std::size_t rows = sample_->shard_size(si);
    if (rows == 0) continue;
    staging.resize(rows);
    for (std::size_t local = 0; local < rows; ++local) {
      staging[local] =
          static_cast<float>(scales_host_[sample_->GlobalSlot(si, local)]);
    }
    shards_[si].device->CopyToDevice(staging.data(), rows,
                                     &shards_[si].point_scales);
  }
  scales_epoch_ = sample_->migration_epoch();
}

void KdeEngine::PrepareForPass() {
  // Streaming freeze: with slot chains in flight a migration would
  // permute rows under enqueued commands, and even a safe one would make
  // results depend on where in the stream the drain landed — breaking
  // the streamed-equals-replay bitwise contract.
  if (streaming_) return;
  if (shards_.size() < 2) return;
  sample_->MaybeRebalance();
  // Migration permutes local rows; the per-shard scale buffers are
  // local-indexed and must follow.
  if (has_scales_ && scales_epoch_ != sample_->migration_epoch()) {
    UploadScales();
  }
}

void KdeEngine::SnapshotBusy(std::vector<double>* out) const {
  out->resize(shards_.size());
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    (*out)[si] = shards_[si].device->DeviceBusySeconds();
  }
}

void KdeEngine::ObservePass(const std::vector<double>& busy_before) {
  if (shards_.size() < 2) return;
  std::vector<double> deltas(shards_.size());
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    deltas[si] = shards_[si].device->DeviceBusySeconds() - busy_before[si];
  }
  sample_->ObserveShardSeconds(deltas);
}

std::vector<double> KdeEngine::ComputeScottBandwidth() {
  const std::size_t s = sample_size();
  const std::size_t d = dims();

  // Per shard: one fused kernel fills 2d segments — x then x^2 per
  // dimension — and one segmented reduction yields the shard's 2d sums in
  // a single read-back; all shards run concurrently on their own queues
  // and the per-dimension moments fold on the host (sums over shards are
  // exact). sigma^2 = E[x^2] - E[x]^2 per dimension (Section 5.2). On one
  // shard this is the pre-sharding 2-launch sequence: the launch count is
  // independent of d.
  std::vector<ScratchBuffer> moments(shards_.size());
  std::vector<ScratchBuffer> sums(shards_.size());
  std::vector<std::vector<double>> host_sums(shards_.size());
  std::vector<Event> done(shards_.size());
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    EngineShard& sh = shards_[si];
    const std::size_t rows = sample_->shard_size(si);
    if (rows == 0) continue;
    if (sh.backend == KernelBackend::kSimd) sample_->EnsureSoaCurrent(si);
    CommandQueue* queue = sh.device->default_queue();
    moments[si] = sh.device->AcquireScratch(2 * d * rows);
    sums[si] = sh.device->AcquireScratch(2 * d);
    host_sums[si].resize(2 * d);
    // The trimmed MomentsView (no bandwidth/scale pointers — kb::Moments
    // reads raw sample values only, and the bandwidth it derives is not
    // initialized yet) keeps the declared set equal to the kernel's real
    // pointer surface, which fkde-lint checks at view granularity.
    const kb::ShardKernelView view = MomentsView(si);
    double* out = moments[si]->device_data();
    BufferAccess moments_acc[3];
    std::size_t na = 0;
    moments_acc[na++] = Reads(sample_->shard_buffer(si), 0, rows * d);
    moments_acc[na++] = Writes(*moments[si], 0, 2 * d * rows);
    if (view.soa != nullptr) {
      moments_acc[na++] = Reads(sample_->shard_soa(si));
    }
    queue->EnqueueLaunch(
        "scott_moments", rows, 2.0 * static_cast<double>(d),
        [view, out, rows](std::size_t begin, std::size_t end) {
          kb::Moments(view, out, rows, begin, end);
        },
        std::span<const BufferAccess>(moments_acc, na));
    EnqueueReduceSumSegments(queue, *moments[si], 0, rows, 2 * d,
                             sums[si].get());
    done[si] = queue->EnqueueCopyToHost(*sums[si], 0, 2 * d,
                                        host_sums[si].data());
  }
  std::vector<double> total(2 * d, 0.0);
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    if (!done[si].valid()) continue;
    done[si].Wait();
    for (std::size_t k = 0; k < 2 * d; ++k) total[k] += host_sums[si][k];
  }

  std::vector<double> bandwidth(d);
  const double factor =
      std::pow(static_cast<double>(s), -1.0 / (static_cast<double>(d) + 4.0));
  for (std::size_t dim = 0; dim < d; ++dim) {
    const double sum = total[2 * dim];
    const double sum_sq = total[2 * dim + 1];
    const double mean = sum / static_cast<double>(s);
    const double variance =
        std::max(sum_sq / static_cast<double>(s) - mean * mean, 0.0);
    double sigma = std::sqrt(variance);
    // Degenerate attribute (all sampled values equal): fall back to a
    // tiny positive bandwidth so the estimator stays well-defined.
    if (sigma <= 0.0) sigma = 1e-6 * std::max(std::abs(mean), 1.0);
    bandwidth[dim] = factor * sigma;
  }
  return bandwidth;
}

void KdeEngine::StageBounds(const Box& box, double* staging) const {
  FKDE_CHECK_MSG(box.dims() == dims(), "query dims mismatch");
  for (std::size_t j = 0; j < dims(); ++j) {
    staging[j] = box.lower(j);
    staging[dims() + j] = box.upper(j);
  }
}

kb::ShardKernelView KdeEngine::MomentsView(std::size_t shard) const {
  const EngineShard& sh = shards_[shard];
  kb::ShardKernelView view;
  view.backend = sh.backend;
  view.precision = sh.precision;
  view.kernel = kernel_;
  view.d = dims();
  view.aos = sample_->shard_buffer(shard).device_data();
  if (sh.backend == KernelBackend::kSimd && sample_->soa_enabled(shard)) {
    view.soa = sample_->shard_soa(shard).device_data();
    view.soa_stride = sample_->soa_stride();
  }
  return view;
}

kb::ShardKernelView KdeEngine::ShardView(std::size_t shard) const {
  const EngineShard& sh = shards_[shard];
  kb::ShardKernelView view = MomentsView(shard);
  view.h = sh.bandwidth_dev.device_data();
  view.scales = has_scales_ ? sh.point_scales.device_data() : nullptr;
  return view;
}

double KdeEngine::Estimate(const Box& box) {
  PrepareForPass();
  std::vector<double> busy_before;
  SnapshotBusy(&busy_before);
  BeginEstimateSlot(box, 0);
  const double estimate = FinishEstimateSlot(0);
  ObservePass(busy_before);
  return estimate;
}

void KdeEngine::BeginEstimateSlot(const Box& box, std::size_t slot) {
  const std::size_t d = dims();
  FKDE_CHECK_MSG(slot < bounds_staging_.size(), "slot beyond ring depth");
  double* staging = bounds_staging_[slot].data();
  StageBounds(box, staging);

  // Figure 3, steps 1-4, per shard and concurrently across shards: bounds
  // upload, one work item per sample point computing the closed-form
  // contribution (13) as a product over dimensions (with the variable-KDE
  // extension, point i smooths with h_j * scales[i]), the binary-tree
  // reduction to one scalar, and the scalar read-back. Each shard's chain
  // is enqueued back-to-back on its own in-order queue into slot-private
  // buffers; `FinishEstimateSlot` waits on the read-backs and folds.
  // Across the ring wrap the slot's previous chain has fully completed
  // (its query was delivered before the slot came around), so the reuse
  // WAR hazard is ordered by the in-order queue alone.
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    EngineShard& sh = shards_[si];
    ShardSlot& sl = sh.slots[slot];
    const std::size_t rows = sample_->shard_size(si);
    sl.est_staging = 0.0;
    sl.est_done = Event();
    if (rows == 0) continue;
    if (sh.backend == KernelBackend::kSimd) sample_->EnsureSoaCurrent(si);
    CommandQueue* queue = sh.device->default_queue();
    queue->EnqueueCopyToDevice(staging, 2 * d, &sl.bounds_dev);
    const kb::ShardKernelView view = ShardView(si);
    const double* bounds = sl.bounds_dev.device_data();
    double* contrib = sl.contributions.device_data();
    BufferAccess acc[6];
    std::size_t na = 0;
    acc[na++] = Reads(sample_->shard_buffer(si), 0, rows * d);
    acc[na++] = Reads(sl.bounds_dev, 0, 2 * d);
    acc[na++] = Reads(sh.bandwidth_dev, 0, d);
    acc[na++] = Writes(sl.contributions, 0, rows);
    if (has_scales_) acc[na++] = Reads(sh.point_scales, 0, rows);
    if (view.soa != nullptr) acc[na++] = Reads(sample_->shard_soa(si));
    queue->EnqueueLaunch(
        "kde_contributions", rows, static_cast<double>(d),
        [view, bounds, contrib](std::size_t begin, std::size_t end) {
          kb::FusedContribution(view, bounds, contrib, begin, end);
        },
        std::span<const BufferAccess>(acc, na));
    EnqueueReduceSumSegments(queue, sl.contributions, 0, rows, 1,
                             &sl.est_sum);
    sl.est_done = queue->EnqueueCopyToHost(sl.est_sum, 0, 1, &sl.est_staging);
  }
}

double KdeEngine::FinishEstimateSlot(std::size_t slot) {
  double total = 0.0;
  for (EngineShard& sh : shards_) {
    ShardSlot& sl = sh.slots[slot];
    if (sl.est_done.valid()) {
      sl.est_done.Wait();
      sl.est_done = Event();
    }
    total += sl.est_staging;
  }
  last_estimate_ = total / static_cast<double>(sample_size());
  return last_estimate_;
}

void KdeEngine::EnqueueGradientPartialsKernel(std::size_t shard,
                                              std::size_t slot) {
  EngineShard& sh = shards_[shard];
  ShardSlot& sl = sh.slots[slot];
  const std::size_t rows = sample_->shard_size(shard);
  const std::size_t d = dims();
  if (sh.backend == KernelBackend::kSimd) sample_->EnsureSoaCurrent(shard);
  const kb::ShardKernelView view = ShardView(shard);
  const double* bounds = sl.bounds_dev.device_data();
  double* contrib = sl.contributions.device_data();
  double* partials = sl.grad_partials.device_data();

  // Fused kernel: per sample point, the per-dimension CDF differences and
  // their h-derivatives give both the contribution (13) and, via
  // prefix/suffix products (avoiding division by near-zero factors), the
  // per-dimension gradient terms of eq. (17). Charged at its full 3d
  // ops/item; whether that cost reaches the host depends on who waits —
  // the synchronous path blocks on it, the enqueued path lets it run
  // while the database executes the query (Section 5.5).
  auto body = [view, bounds, contrib, partials,
               rows](std::size_t begin, std::size_t end) {
    kb::FusedContributionGrad(view, bounds, contrib, partials, rows, begin,
                              end);
  };
  BufferAccess acc[7];
  std::size_t na = 0;
  acc[na++] = Reads(sample_->shard_buffer(shard), 0, rows * d);
  acc[na++] = Reads(sl.bounds_dev, 0, 2 * d);
  acc[na++] = Reads(sh.bandwidth_dev, 0, d);
  acc[na++] = Writes(sl.contributions, 0, rows);
  acc[na++] = Writes(sl.grad_partials, 0, d * rows);
  if (has_scales_) acc[na++] = Reads(sh.point_scales, 0, rows);
  if (view.soa != nullptr) acc[na++] = Reads(sample_->shard_soa(shard));
  sh.device->default_queue()->EnqueueLaunch(
      "kde_contributions_grad", rows, 3.0 * static_cast<double>(d), body,
      std::span<const BufferAccess>(acc, na));
}

double KdeEngine::EstimateWithGradient(const Box& box,
                                       std::vector<double>* gradient) {
  PrepareForPass();
  const std::size_t d = dims();
  double staging[2 * kMaxDims];
  StageBounds(box, staging);
  std::vector<double> busy_before;
  SnapshotBusy(&busy_before);

  // Per shard: bounds upload, the fused contribution+partials kernel, the
  // estimate reduction (one segment) with its scalar read-back, then ONE
  // segmented reduction over the d dim-major partial segments with its
  // d-double read-back — all enqueued on the shard's queue, waited
  // together. This path is on the critical path and hides nothing.
  std::vector<Event> done(shards_.size());
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    EngineShard& sh = shards_[si];
    ShardSlot& sl = sh.slots[0];
    const std::size_t rows = sample_->shard_size(si);
    sl.est_staging = 0.0;
    std::fill(sl.grad_staging.begin(), sl.grad_staging.end(), 0.0);
    if (rows == 0) continue;
    CommandQueue* queue = sh.device->default_queue();
    queue->EnqueueCopyToDevice(staging, 2 * d, &sl.bounds_dev);
    EnqueueGradientPartialsKernel(si, 0);
    EnqueueReduceSumSegments(queue, sl.contributions, 0, rows, 1,
                             &sl.est_sum);
    queue->EnqueueCopyToHost(sl.est_sum, 0, 1, &sl.est_staging);
    EnqueueReduceSumSegments(queue, sl.grad_partials, 0, rows, d,
                             &sl.grad_sums);
    done[si] =
        queue->EnqueueCopyToHost(sl.grad_sums, 0, d, sl.grad_staging.data());
  }
  double total = 0.0;
  gradient->assign(d, 0.0);
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    if (!done[si].valid()) continue;
    done[si].Wait();
    total += shards_[si].slots[0].est_staging;
    for (std::size_t j = 0; j < d; ++j) {
      (*gradient)[j] += shards_[si].slots[0].grad_staging[j];
    }
  }
  ObservePass(busy_before);
  const double inv_s = 1.0 / static_cast<double>(sample_size());
  for (double& g : *gradient) g *= inv_s;
  last_estimate_ = total * inv_s;
  return last_estimate_;
}

Event KdeEngine::EnqueueGradient() {
  EnqueueGradientSlot(0);
  gradient_pending_ = true;
  // The last shard's read-back is the caller-visible handle (all shards'
  // events are held in their slots).
  Event last;
  for (EngineShard& sh : shards_) {
    if (sh.slots[0].pending_gradient.valid()) {
      last = sh.slots[0].pending_gradient;
    }
  }
  return last;
}

void KdeEngine::EnqueueGradientSlot(std::size_t slot) {
  const std::size_t d = dims();
  // Section 5.5, steps 5-6, for the bounds resident in `slot`: per
  // shard, partials kernel, one segmented reduction, d-double read-back —
  // all enqueued, none waited for. Each shard's in-order queue sequences
  // its chain; the read-back events are the collection handles. A
  // still-pending previous gradient on the same slot is simply
  // superseded: its commands complete in order and its staging writes
  // happen-before ours.
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    EngineShard& sh = shards_[si];
    ShardSlot& sl = sh.slots[slot];
    const std::size_t rows = sample_->shard_size(si);
    if (rows == 0) {
      sl.pending_gradient = Event();
      std::fill(sl.grad_staging.begin(), sl.grad_staging.end(), 0.0);
      continue;
    }
    EnqueueGradientPartialsKernel(si, slot);
    CommandQueue* queue = sh.device->default_queue();
    EnqueueReduceSumSegments(queue, sl.grad_partials, 0, rows, d,
                             &sl.grad_sums);
    sl.pending_gradient =
        queue->EnqueueCopyToHost(sl.grad_sums, 0, d, sl.grad_staging.data());
  }
}

void KdeEngine::CollectGradient(std::vector<double>* gradient) {
  FKDE_CHECK_MSG(gradient_pending_, "no enqueued gradient to collect");
  CollectGradientSlot(0, gradient);
  gradient_pending_ = false;
}

void KdeEngine::CollectGradientSlot(std::size_t slot,
                                    std::vector<double>* gradient) {
  const std::size_t d = dims();
  gradient->assign(d, 0.0);
  for (EngineShard& sh : shards_) {
    ShardSlot& sl = sh.slots[slot];
    if (sl.pending_gradient.valid()) {
      sl.pending_gradient.Wait();
      sl.pending_gradient = Event();
      for (std::size_t j = 0; j < d; ++j) {
        (*gradient)[j] += sl.grad_staging[j];
      }
    }
  }
  const double inv_s = 1.0 / static_cast<double>(sample_size());
  for (double& g : *gradient) g *= inv_s;
}

Status KdeEngine::EnableStreaming(std::size_t depth) {
  if (depth == 0) {
    return Status::InvalidArgument("streaming depth must be >= 1");
  }
  for (EngineShard& sh : shards_) {
    while (sh.slots.size() < depth) {
      sh.slots.emplace_back();
      AllocateSlot(sh, &sh.slots.back());
    }
  }
  while (bounds_staging_.size() < depth) {
    bounds_staging_.emplace_back(2 * dims());
  }
  streaming_depth_ = std::max(streaming_depth_, depth);
  streaming_ = true;
  return Status::OK();
}

void KdeEngine::DisableStreaming() {
  // Drain before releasing ring buffers: enqueued slot chains hold raw
  // device pointers into them.
  for (EngineShard& sh : shards_) sh.device->default_queue()->Finish();
  for (EngineShard& sh : shards_) sh.slots.resize(1);
  bounds_staging_.resize(1);
  streaming_depth_ = 1;
  feedback_slot_ = 0;
  streaming_ = false;
}

void KdeEngine::SetFeedbackContext(std::size_t slot, double estimate) {
  FKDE_CHECK_MSG(slot < streaming_depth_, "feedback slot beyond ring");
  feedback_slot_ = slot;
  last_estimate_ = estimate;
}

std::size_t KdeEngine::BatchTile(std::size_t queries, std::size_t shard_rows,
                                 bool with_partials) const {
  const std::size_t per_query =
      shard_rows * (1 + (with_partials ? dims() : 0)) * sizeof(double);
  const std::size_t tile =
      std::max<std::size_t>(1, kMaxBatchTileBytes / std::max<std::size_t>(
                                                        per_query, 1));
  return std::min(tile, queries);
}

std::vector<KdeEngine::BatchShard> KdeEngine::EnqueueBatchPipelines(
    std::span<const Box> boxes, const std::vector<double>& descriptors,
    std::size_t truths_count, bool with_partials, bool reduce_gradients,
    const std::function<void(std::size_t, std::size_t, BatchShard&)>& fold,
    bool enqueue_readbacks) {
  const std::size_t m = boxes.size();
  const std::size_t d = dims();
  std::vector<BatchShard> states(shards_.size());
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    EngineShard& sh = shards_[si];
    const std::size_t rows = sample_->shard_size(si);
    if (rows == 0) continue;
    if (sh.backend == KernelBackend::kSimd) sample_->EnsureSoaCurrent(si);
    BatchShard& bs = states[si];
    CommandQueue* queue = sh.device->default_queue();

    // ONE descriptor upload per shard: all m query bounds, plus the
    // trailing truths for the loss path. All scratch below comes from the
    // device's pool — reused across calls, invisible to the ledger.
    bs.bounds = sh.device->AcquireScratch(m * 2 * d + truths_count);
    queue->EnqueueCopyToDevice(descriptors.data(), m * 2 * d + truths_count,
                               bs.bounds.get());
    const std::size_t tile = BatchTile(m, rows, with_partials);
    bs.contrib = sh.device->AcquireScratch(tile * rows);
    if (with_partials) {
      bs.partials = sh.device->AcquireScratch(tile * d * rows);
    }
    bs.est = sh.device->AcquireScratch(m);
    if (reduce_gradients) bs.grad = sh.device->AcquireScratch(m * d);

    const kb::ShardKernelView view = ShardView(si);
    const double* bounds = bs.bounds->device_data();
    double* contrib = bs.contrib->device_data();
    double* partials = with_partials ? bs.partials->device_data() : nullptr;
    // Keep the scratch handles alive until the shard's chain completes:
    // the last command to hold them releases them back to the pool.
    const ScratchBuffer hold_bounds = bs.bounds;
    const ScratchBuffer hold_contrib = bs.contrib;
    const ScratchBuffer hold_partials = bs.partials;

    for (std::size_t t0 = 0; t0 < m; t0 += tile) {
      const std::size_t t = std::min(tile, m - t0);
      if (!with_partials) {
        // Batched analogue of the single-query contribution kernel: each
        // work item owns a sample point and covers the whole query tile,
        // so all m contribution maps cost ONE launch (Figure 3 step 2,
        // batched). The query loop is hoisted outside the point loop so
        // the contrib writes of a work-group stay contiguous per query —
        // and so the backend re-hoists the per-(query, dim) reciprocals
        // once per query descriptor.
        auto body = [=](std::size_t begin, std::size_t end) {
          for (std::size_t q = 0; q < t; ++q) {
            kb::FusedContribution(view, bounds + (t0 + q) * 2 * d,
                                  contrib + q * rows, begin, end);
          }
          (void)hold_bounds;
          (void)hold_contrib;
        };
        BufferAccess acc[6];
        std::size_t na = 0;
        acc[na++] = Reads(sample_->shard_buffer(si), 0, rows * d);
        acc[na++] = Reads(*bs.bounds, t0 * 2 * d, t * 2 * d);
        acc[na++] = Reads(sh.bandwidth_dev, 0, d);
        acc[na++] = Writes(*bs.contrib, 0, t * rows);
        if (has_scales_) acc[na++] = Reads(sh.point_scales, 0, rows);
        if (view.soa != nullptr) acc[na++] = Reads(sample_->shard_soa(si));
        queue->EnqueueLaunch("kde_batch_contributions", rows,
                             static_cast<double>(t * d), body,
                             std::span<const BufferAccess>(acc, na));
      } else {
        // Fused contribution+gradient kernel over the rows×tile grid,
        // reusing the prefix/suffix-product scheme of
        // EstimateWithGradient per query. Partials are stored query-major
        // ((q*d + j)*rows + i) so both the per-query segmented reduction
        // and the loss-weighted fold read contiguous segments.
        auto body = [=](std::size_t begin, std::size_t end) {
          for (std::size_t q = 0; q < t; ++q) {
            kb::FusedContributionGrad(view, bounds + (t0 + q) * 2 * d,
                                      contrib + q * rows,
                                      partials + q * d * rows, rows, begin,
                                      end);
          }
          (void)hold_bounds;
          (void)hold_contrib;
          (void)hold_partials;
        };
        BufferAccess acc[7];
        std::size_t na = 0;
        acc[na++] = Reads(sample_->shard_buffer(si), 0, rows * d);
        acc[na++] = Reads(*bs.bounds, t0 * 2 * d, t * 2 * d);
        acc[na++] = Reads(sh.bandwidth_dev, 0, d);
        acc[na++] = Writes(*bs.contrib, 0, t * rows);
        acc[na++] = Writes(*bs.partials, 0, t * d * rows);
        if (has_scales_) acc[na++] = Reads(sh.point_scales, 0, rows);
        if (view.soa != nullptr) acc[na++] = Reads(sample_->shard_soa(si));
        queue->EnqueueLaunch("kde_batch_contributions_grad", rows,
                             3.0 * static_cast<double>(t * d), body,
                             std::span<const BufferAccess>(acc, na));
      }
      // All tile estimates advance through every reduction level
      // together.
      EnqueueReduceSumSegments(queue, *bs.contrib, 0, rows, t, bs.est.get(),
                               t0);
      if (reduce_gradients) {
        // The tile's t*d gradient partial segments reduce as one batch.
        EnqueueReduceSumSegments(queue, *bs.partials, 0, rows, t * d,
                                 bs.grad.get(), t0 * d);
      }
      if (fold) fold(t0, t, bs);
    }
    if (enqueue_readbacks) {
      bs.est_staging.resize(m);
      bs.done = queue->EnqueueCopyToHost(*bs.est, 0, m,
                                         bs.est_staging.data());
      if (reduce_gradients) {
        bs.grad_staging.resize(m * d);
        bs.done = queue->EnqueueCopyToHost(*bs.grad, 0, m * d,
                                           bs.grad_staging.data());
      }
    }
  }
  return states;
}

std::vector<double> KdeEngine::StageBatchDescriptors(
    std::span<const Box> boxes, std::span<const double> truths) const {
  const std::size_t m = boxes.size();
  const std::size_t d = dims();
  // Layout: query q's bounds at [q*2d, q*2d+2d) (lowers then uppers),
  // truths packed behind all bounds at [m*2d + q]. The same staging
  // serves every shard's upload.
  std::vector<double> staging(m * 2 * d + truths.size());
  for (std::size_t q = 0; q < m; ++q) {
    FKDE_CHECK_MSG(boxes[q].dims() == d, "query dims mismatch");
    double* qb = staging.data() + q * 2 * d;
    for (std::size_t j = 0; j < d; ++j) {
      qb[j] = boxes[q].lower(j);
      qb[d + j] = boxes[q].upper(j);
    }
  }
  if (!truths.empty()) {
    std::copy(truths.begin(), truths.end(), staging.begin() + m * 2 * d);
  }
  return staging;
}

void KdeEngine::EstimateBatch(std::span<const Box> boxes,
                              std::span<double> estimates) {
  FKDE_CHECK_MSG(estimates.size() == boxes.size(),
                 "estimate output arity mismatch");
  // m == 0 is a metered no-op: no descriptor upload, no kernel launch, no
  // read-back (pinned by batch_launch_test).
  if (boxes.empty()) return;
  PrepareForPass();
  const std::size_t m = boxes.size();
  std::vector<double> busy_before;
  SnapshotBusy(&busy_before);
  const std::vector<double> descriptors = StageBatchDescriptors(boxes, {});
  std::vector<BatchShard> states = EnqueueBatchPipelines(
      boxes, descriptors, /*truths_count=*/0, /*with_partials=*/false,
      /*reduce_gradients=*/false, nullptr, /*enqueue_readbacks=*/true);
  std::fill(estimates.begin(), estimates.end(), 0.0);
  for (BatchShard& bs : states) {
    if (!bs.done.valid()) continue;
    bs.done.Wait();
    for (std::size_t q = 0; q < m; ++q) estimates[q] += bs.est_staging[q];
  }
  ObservePass(busy_before);
  const double inv_s = 1.0 / static_cast<double>(sample_size());
  for (double& e : estimates) e *= inv_s;
}

void KdeEngine::EstimateBatchWithGradient(std::span<const Box> boxes,
                                          std::span<double> estimates,
                                          std::span<double> gradients) {
  FKDE_CHECK_MSG(estimates.size() == boxes.size(),
                 "estimate output arity mismatch");
  FKDE_CHECK_MSG(gradients.size() == boxes.size() * dims(),
                 "gradient output arity mismatch");
  if (boxes.empty()) return;
  PrepareForPass();
  const std::size_t m = boxes.size();
  const std::size_t d = dims();
  std::vector<double> busy_before;
  SnapshotBusy(&busy_before);
  const std::vector<double> descriptors = StageBatchDescriptors(boxes, {});
  std::vector<BatchShard> states = EnqueueBatchPipelines(
      boxes, descriptors, /*truths_count=*/0, /*with_partials=*/true,
      /*reduce_gradients=*/true, nullptr, /*enqueue_readbacks=*/true);
  std::fill(estimates.begin(), estimates.end(), 0.0);
  std::fill(gradients.begin(), gradients.end(), 0.0);
  for (BatchShard& bs : states) {
    if (!bs.done.valid()) continue;
    bs.done.Wait();
    for (std::size_t q = 0; q < m; ++q) estimates[q] += bs.est_staging[q];
    for (std::size_t k = 0; k < m * d; ++k) {
      gradients[k] += bs.grad_staging[k];
    }
  }
  ObservePass(busy_before);
  const double inv_s = 1.0 / static_cast<double>(sample_size());
  for (double& e : estimates) e *= inv_s;
  for (double& g : gradients) g *= inv_s;
}

double KdeEngine::EstimateBatchLoss(std::span<const Box> boxes,
                                    std::span<const double> truths,
                                    LossType loss, double lambda,
                                    std::vector<double>* gradient) {
  FKDE_CHECK_MSG(truths.size() == boxes.size(), "truth arity mismatch");
  FKDE_CHECK_MSG(!boxes.empty(), "batched loss needs at least one query");
  const std::size_t m = boxes.size();
  const std::size_t d = dims();

  if (shards_.size() > 1) {
    // Multi-shard: fold the per-query estimates (and gradients) across
    // shards on the host first, then chain the loss. Same math as the
    // single-shard device fold; only the summation order across shard
    // boundaries differs.
    std::vector<double> estimates(m);
    double loss_total = 0.0;
    if (gradient == nullptr) {
      EstimateBatch(boxes, estimates);
      for (std::size_t q = 0; q < m; ++q) {
        loss_total += EvaluateLoss(loss, estimates[q], truths[q], lambda);
      }
      return loss_total / static_cast<double>(m);
    }
    std::vector<double> grads(m * d);
    EstimateBatchWithGradient(boxes, estimates, grads);
    gradient->assign(d, 0.0);
    for (std::size_t q = 0; q < m; ++q) {
      loss_total += EvaluateLoss(loss, estimates[q], truths[q], lambda);
      const double weight =
          LossDerivative(loss, estimates[q], truths[q], lambda);
      for (std::size_t k = 0; k < d; ++k) {
        (*gradient)[k] += weight * grads[q * d + k];
      }
    }
    const double inv_m = 1.0 / static_cast<double>(m);
    for (double& g : *gradient) g *= inv_m;
    return loss_total * inv_m;
  }

  PrepareForPass();
  const std::size_t s = sample_size();
  const std::vector<double> descriptors = StageBatchDescriptors(boxes, truths);
  Device* dev = device();
  const double inv_s = 1.0 / static_cast<double>(s);

  if (gradient == nullptr) {
    // One epilogue work item folds all m losses (Section 5.5 step 7 for
    // the whole batch); the scalar comes back in one read.
    const ScratchBuffer results = dev->AcquireScratch(d + 1);
    auto fold = [&](std::size_t t0, std::size_t t, BatchShard& bs) {
      // Only act once, after the last tile, when every estimate is
      // resident.
      if (t0 + t < m) return;
      const double* est = bs.est->device_data();
      const double* truth_dev = bs.bounds->device_data() + m * 2 * d;
      double* out = results->device_data();
      const ScratchBuffer hold_results = results;
      const ScratchBuffer hold_est = bs.est;
      const ScratchBuffer hold_bounds = bs.bounds;
      auto body = [=](std::size_t begin, std::size_t end) {
        for (std::size_t item = begin; item < end; ++item) {
          double total = 0.0;
          for (std::size_t q = 0; q < m; ++q) {
            total +=
                EvaluateLoss(loss, est[q] * inv_s, truth_dev[q], lambda);
          }
          out[item] = total;
        }
        (void)hold_results;
        (void)hold_est;
        (void)hold_bounds;
      };
      const BufferAccess acc[] = {Reads(*bs.est, 0, m),
                                  Reads(*bs.bounds, m * 2 * d, m),
                                  Writes(*results, 0, 1)};
      dev->Launch("kde_batch_loss", 1, static_cast<double>(m), body, acc);
    };
    EnqueueBatchPipelines(boxes, descriptors, m, /*with_partials=*/false,
                          /*reduce_gradients=*/false, fold,
                          /*enqueue_readbacks=*/false);
    double total = 0.0;
    dev->CopyToHost(*results, 0, 1, &total);
    return total / static_cast<double>(m);
  }

  // Gradient path: the per-query ∂L/∂p̂ (eq. 14) is folded into the first
  // reduction level of the gradient partials, so only d+1 scalars — the d
  // loss-weighted gradient dot-products and the loss sum — ever reach the
  // host.
  const std::size_t gpseg = (s + kReduceGroupSize - 1) / kReduceGroupSize;
  const ScratchBuffer fold_buf = dev->AcquireScratch((d + 1) * gpseg);
  const ScratchBuffer results = dev->AcquireScratch(d + 1);
  double loss_total = 0.0;
  std::vector<double> grad_total(d, 0.0);
  std::vector<double> tile_results(d + 1);
  auto fold = [&](std::size_t t0, std::size_t t, BatchShard& bs) {
    const double* est = bs.est->device_data();
    const double* truth_dev = bs.bounds->device_data() + m * 2 * d;
    const double* partials = bs.partials->device_data();
    double* fold_out = fold_buf->device_data();
    const ScratchBuffer hold_fold = fold_buf;
    const ScratchBuffer hold_est = bs.est;
    const ScratchBuffer hold_bounds = bs.bounds;
    const ScratchBuffer hold_partials = bs.partials;
    // Items form d+1 segments of gpseg groups: segment k < d produces the
    // loss-weighted first reduction level of dimension k's partials;
    // segment d carries the tile's loss sum (group 0) padded with zeros,
    // so one segmented reduction finishes everything.
    auto body = [=](std::size_t begin, std::size_t end) {
      for (std::size_t item = begin; item < end; ++item) {
        const std::size_t k = item / gpseg;
        const std::size_t g = item % gpseg;
        if (k == d) {
          double total = 0.0;
          if (g == 0) {
            for (std::size_t q = 0; q < t; ++q) {
              total += EvaluateLoss(loss, est[t0 + q] * inv_s,
                                    truth_dev[t0 + q], lambda);
            }
          }
          fold_out[item] = total;
          continue;
        }
        const std::size_t lo = g * kReduceGroupSize;
        const std::size_t hi = std::min(lo + kReduceGroupSize, s);
        double acc = 0.0;
        for (std::size_t q = 0; q < t; ++q) {
          const double weight = LossDerivative(loss, est[t0 + q] * inv_s,
                                               truth_dev[t0 + q], lambda);
          const double* seg = partials + (q * d + k) * s;
          double sub = 0.0;
          for (std::size_t i = lo; i < hi; ++i) sub += seg[i];
          acc += weight * sub;
        }
        fold_out[item] = acc;
      }
      (void)hold_fold;
      (void)hold_est;
      (void)hold_bounds;
      (void)hold_partials;
    };
    const BufferAccess acc[] = {Reads(*bs.est, t0, t),
                                Reads(*bs.bounds, m * 2 * d + t0, t),
                                Reads(*bs.partials, 0, t * d * s),
                                Writes(*fold_buf, 0, (d + 1) * gpseg)};
    dev->Launch("kde_batch_loss_grad_fold", (d + 1) * gpseg,
                static_cast<double>(t * kReduceGroupSize), body, acc);
    ReduceSumSegments(dev, *fold_buf, 0, gpseg, d + 1, results.get(), 0);
    dev->CopyToHost(*results, 0, d + 1, tile_results.data());
    for (std::size_t k = 0; k < d; ++k) grad_total[k] += tile_results[k];
    loss_total += tile_results[d];
  };
  EnqueueBatchPipelines(boxes, descriptors, m, /*with_partials=*/true,
                        /*reduce_gradients=*/false, fold,
                        /*enqueue_readbacks=*/false);

  gradient->resize(d);
  const double inv_ms =
      1.0 / (static_cast<double>(m) * static_cast<double>(s));
  for (std::size_t k = 0; k < d; ++k) (*gradient)[k] = grad_total[k] * inv_ms;
  return loss_total / static_cast<double>(m);
}

std::size_t KdeEngine::ModelBytes() const {
  return sample_->PayloadBytes() + bandwidth_.size() * sizeof(double) +
         sample_size() * sizeof(double);
}

}  // namespace fkde
