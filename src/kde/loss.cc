#include "kde/loss.h"

#include <cctype>

#include "common/logging.h"

namespace fkde {

Result<LossType> ParseLossName(const std::string& name) {
  std::string lower;
  for (char c : name) lower += static_cast<char>(std::tolower(c));
  if (lower == "quadratic" || lower == "l2") return LossType::kQuadratic;
  if (lower == "absolute" || lower == "l1") return LossType::kAbsolute;
  if (lower == "relative") return LossType::kRelative;
  if (lower == "squared_relative") return LossType::kSquaredRelative;
  if (lower == "squared_q" || lower == "q") return LossType::kSquaredQ;
  return Status::InvalidArgument("unknown loss: " + name);
}

const char* LossName(LossType type) {
  switch (type) {
    case LossType::kQuadratic:
      return "quadratic";
    case LossType::kAbsolute:
      return "absolute";
    case LossType::kRelative:
      return "relative";
    case LossType::kSquaredRelative:
      return "squared_relative";
    case LossType::kSquaredQ:
      return "squared_q";
  }
  return "unknown";
}

FKDE_HOT double EvaluateLoss(LossType type, double estimate, double truth,
                             double lambda) {
  FKDE_DCHECK(lambda > 0.0);
  const double diff = estimate - truth;
  switch (type) {
    case LossType::kQuadratic:
      return diff * diff;
    case LossType::kAbsolute:
      return std::abs(diff);
    case LossType::kRelative:
      return std::abs(diff) / (lambda + truth);
    case LossType::kSquaredRelative: {
      const double r = diff / (lambda + truth);
      return r * r;
    }
    case LossType::kSquaredQ: {
      const double q =
          std::log(lambda + estimate) - std::log(lambda + truth);
      return q * q;
    }
  }
  return 0.0;
}

FKDE_HOT double LossDerivative(LossType type, double estimate,
                               double truth, double lambda) {
  FKDE_DCHECK(lambda > 0.0);
  const double diff = estimate - truth;
  const double sign = diff > 0.0 ? 1.0 : (diff < 0.0 ? -1.0 : 0.0);
  switch (type) {
    case LossType::kQuadratic:
      return 2.0 * diff;
    case LossType::kAbsolute:
      return sign;
    case LossType::kRelative:
      return sign / (lambda + truth);
    case LossType::kSquaredRelative:
      return 2.0 * diff / ((lambda + truth) * (lambda + truth));
    case LossType::kSquaredQ:
      return 2.0 *
             (std::log(lambda + estimate) - std::log(lambda + truth)) /
             (lambda + estimate);
  }
  return 0.0;
}

}  // namespace fkde
