/// \file kde_estimator.h
/// \brief The assembled KDE selectivity estimators of the evaluation.
///
/// Wires the engine, bandwidth selectors, adaptive learner and sample
/// maintenance into the four KDE configurations compared in Section 6.1.1:
///
///  * **Heuristic** — Scott's-rule bandwidth, no adaptation. The paper's
///    stand-in for prior KDE estimators [14, 16].
///  * **Scv** — construction-time Smoothed-Cross-Validation bandwidth.
///  * **Batch** — bandwidth numerically optimized over a training
///    workload (Section 3), static afterwards.
///  * **Periodic** — the deployment recipe of Section 3.4: keep the last
///    q user queries in a ring buffer and periodically re-run the batch
///    optimization over them. Heavier than Adaptive per update, but uses
///    the global optimizer, so it cannot get stuck in a local minimum.
///  * **Adaptive** — Scott init, then continuous mini-batch RMSprop
///    bandwidth updates from query feedback plus Karma/reservoir sample
///    maintenance (Sections 4 & 5). The per-query gradient pass and the
///    Karma scoring pass are ENQUEUED on the device queue, never waited
///    for inline: the gradient runs while the database executes the query
///    and is collected when its feedback arrives; the Karma pass runs
///    while the database processes the next statement and its
///    replacements are collected at the next feedback (Sections 5.5-5.6).

#ifndef FKDE_KDE_KDE_ESTIMATOR_H_
#define FKDE_KDE_KDE_ESTIMATOR_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/rng.h"
#include "common/status.h"
#include "data/table.h"
#include "estimator/estimator.h"
#include "kde/adaptive.h"
#include "kde/batch.h"
#include "kde/engine.h"
#include "kde/karma.h"
#include "kde/reservoir.h"
#include "kde/scv.h"
#include "workload/workload.h"

namespace fkde {

/// \brief Configuration shared by all KDE estimator variants.
struct KdeConfig {
  /// Sample rows kept on the device. The paper's d*4kB memory budget with
  /// 4-byte floats yields 1024 rows regardless of d.
  std::size_t sample_size = 1024;
  KernelType kernel = KernelType::kGaussian;
  /// Loss optimized by the batch and adaptive variants.
  LossType loss = LossType::kQuadratic;
  double lambda = 1e-5;
  std::uint64_t seed = 7;

  AdaptiveOptions adaptive;   ///< Adaptive variant only.
  KarmaOptions karma;         ///< Adaptive variant only.
  BatchOptions batch;         ///< Batch and Periodic variants.
  ScvOptions scv;             ///< SCV variant only.
  bool enable_karma = true;      ///< Adaptive: Karma maintenance on/off.
  bool enable_reservoir = true;  ///< Adaptive: reservoir inserts on/off.
  /// Periodic variant: ring-buffer capacity (the paper suggests "on the
  /// order of a few hundred queries", Section 3.4 step 1).
  std::size_t feedback_window = 256;
  /// Periodic variant: re-run the batch optimization after this many new
  /// feedback observations.
  std::size_t reoptimize_every = 100;
};

/// \brief KDE-based SelectivityEstimator over a device-resident sample.
class KdeSelectivityEstimator : public SelectivityEstimator {
 public:
  enum class Mode { kHeuristic, kScv, kBatch, kPeriodic, kAdaptive };

  /// Builds an estimator over `table` (the model-construction step the
  /// paper triggers from Postgres' ANALYZE). `training` is required for
  /// Mode::kBatch and ignored otherwise. The table pointer is retained:
  /// the adaptive variant draws replacement sample rows from it, exactly
  /// as the paper's maintenance asks the database for fresh tuples.
  static Result<std::unique_ptr<KdeSelectivityEstimator>> Create(
      Mode mode, Device* device, const Table* table, const KdeConfig& config,
      std::span<const Query> training = {});

  /// Multi-device variant: the sample is sharded across `group` and every
  /// engine hot path runs per-shard concurrently (Section 5.4 past one
  /// device's ceiling). The group must outlive the estimator.
  static Result<std::unique_ptr<KdeSelectivityEstimator>> Create(
      Mode mode, DeviceGroup* group, const Table* table,
      const KdeConfig& config, std::span<const Query> training = {});

  std::string name() const override;
  std::size_t dims() const override { return engine_->dims(); }
  double EstimateSelectivity(const Box& box) override;
  void ObserveTrueSelectivity(const Box& box, double selectivity) override;
  void OnInsert(std::span<const double> row,
                std::size_t table_rows_after) override;
  std::size_t ModelBytes() const override;

  // -- Streamed serving (N queries in flight) --------------------------
  //
  // The classic EstimateSelectivity / ObserveTrueSelectivity pair keeps
  // at most one query's device state alive. The ticketed triple below
  // generalizes it: `StreamBegin` enqueues query k's estimate (and, for
  // the adaptive variant, its gradient) chain on slot k % depth without
  // waiting, `StreamDeliver` collects the estimate when the optimizer
  // needs it, and `StreamFeedback` applies the query's true selectivity
  // — RMSprop step, Karma collection/replacements, next Karma pass —
  // against the ticket's own slot, so feedback for query k lands
  // correctly while queries k+1..k+depth-1 are already in flight.
  // Tickets deliver and retire strictly FIFO (checked). With depth 1 the
  // enqueued command sequence is identical to the classic pair's.

  /// Switches the model into streamed serving with `depth` in-flight
  /// tickets. Quiesces classic-path pending state first (so slot 0 is
  /// free) and freezes the sample rebalancer for the duration. Requires
  /// no in-flight tickets.
  Status EnableStreaming(std::size_t depth);

  /// Drains the device queues and returns to classic serving. Requires
  /// all tickets retired.
  void DisableStreaming();

  std::size_t streaming_depth() const { return stream_depth_; }
  /// Tickets begun but not yet retired by StreamFeedback.
  std::size_t stream_in_flight() const { return tickets_.size(); }

  /// Admits `box` into the stream: enqueues its estimate (+ gradient)
  /// chain and returns the ticket. Requires a free slot
  /// (stream_in_flight() < streaming_depth()).
  std::uint64_t StreamBegin(const Box& box);

  /// Waits for `ticket`'s estimate read-backs and returns the clamped
  /// selectivity. Must be called FIFO, once per ticket.
  double StreamDeliver(std::uint64_t ticket);

  /// Applies the true selectivity for `ticket` (delivered, FIFO) and
  /// retires it, freeing its slot for the next admission.
  void StreamFeedback(std::uint64_t ticket, double selectivity);

  /// Retires `ticket` (delivered, FIFO) WITHOUT feedback — the frozen-
  /// model path. A pipelined gradient left on the slot is superseded
  /// when the slot is reused.
  void StreamRetire(std::uint64_t ticket);

  /// Folds every in-flight device pass into host state so the model can
  /// be serialized or torn down without losing behavior: a pending
  /// gradient is collected and discarded (the next out-of-order feedback
  /// recomputes it, bitwise-identically), and a pending Karma pass is
  /// collected into `pending_karma_slots_`, to be applied at the next
  /// feedback exactly as the non-quiesced path would. Estimates before
  /// and after a quiesce are unchanged; snapshot/eviction call this.
  void Quiesce();

  /// Current bandwidth (host copy) — diagnostics and tests.
  const std::vector<double>& bandwidth() const { return engine_->bandwidth(); }
  Mode mode() const { return mode_; }
  KdeEngine* engine() { return engine_.get(); }
  /// Sample points replaced by Karma/shortcut so far.
  std::size_t karma_replacements() const { return karma_replacements_; }
  /// Batch re-optimizations run so far (Periodic mode).
  std::size_t reoptimizations() const { return reoptimizations_; }
  /// Current feedback ring contents (Periodic mode; diagnostics/tests).
  const std::vector<Query>& feedback_ring() const { return feedback_ring_; }
  /// Report of the construction-time batch optimization (Batch mode).
  const BatchReport& batch_report() const { return batch_report_; }

 private:
  /// Snapshot codec (kde/snapshot.cc): reads/writes the private model
  /// state and rebuilds estimators outside the Create path.
  friend class ModelSnapshotAccess;

  KdeSelectivityEstimator(Mode mode, const Table* table,
                          const KdeConfig& config);

  /// Shared model construction once `sample_` exists (sample load, engine,
  /// per-mode setup).
  static Result<std::unique_ptr<KdeSelectivityEstimator>> CreateCommon(
      std::unique_ptr<KdeSelectivityEstimator> est, const Table* table,
      const KdeConfig& config, std::span<const Query> training);

  /// Replaces the sample rows queued in `pending_karma_slots_` with fresh
  /// table tuples (one rng_ draw + d-float transfer each) and clears the
  /// queue. Both the live feedback path and the snapshot-restored path
  /// apply replacements through here, so a quiesce never reorders them.
  void ApplyPendingKarma();

  /// Periodic-mode feedback: ring-buffer append plus the due
  /// re-optimization (shared by the classic and streamed paths).
  void ObservePeriodicFeedback(const Box& box, double selectivity);

  /// One streamed query's host-side state, alive from StreamBegin until
  /// its StreamFeedback retires it.
  struct StreamTicket {
    std::uint64_t id = 0;
    std::size_t slot = 0;      ///< Engine ring slot (id % depth).
    Box box;                   ///< For the Karma pass at feedback time.
    double raw_estimate = 0.0; ///< Unclamped, for the loss derivative.
    bool delivered = false;
  };

  FKDE_SNAPSHOT_EXCLUDE("serialized in the snapshot header; restore feeds it through the constructor")
  Mode mode_;
  FKDE_SNAPSHOT_EXCLUDE("borrowed pointer; the caller re-supplies the table at restore")
  const Table* table_;
  FKDE_SNAPSHOT_EXCLUDE("serialized in the snapshot config block; restore feeds it through the constructor")
  KdeConfig config_;
  Rng rng_;
  std::unique_ptr<DeviceSample> sample_;
  std::unique_ptr<KdeEngine> engine_;
  std::optional<AdaptiveBandwidth> adaptive_;
  std::optional<KarmaMaintainer> karma_;
  std::optional<ReservoirMaintainer> reservoir_;
  BatchReport batch_report_;

  // Feedback pairing: the enqueued gradient pass and Karma's retained
  // contributions are only valid for the last estimated box; out-of-order
  // feedback triggers a recompute.
  FKDE_SNAPSHOT_EXCLUDE("cleared by the Quiesce() that precedes every snapshot; the next feedback recomputes")
  Box last_box_;
  FKDE_SNAPSHOT_EXCLUDE("cleared by the Quiesce() that precedes every snapshot; the next feedback recomputes")
  bool has_last_box_ = false;
  std::size_t karma_replacements_ = 0;
  /// Replacement slots collected from the device but not yet applied:
  /// Karma lands its replacements one query late (Section 5.6), so a
  /// collected pass parks here until the next feedback. Survives
  /// snapshots, which is what keeps evict/restore bitwise-faithful.
  std::vector<std::size_t> pending_karma_slots_;

  // Streamed serving: FIFO of in-flight tickets; depth 0 = classic mode.
  FKDE_SNAPSHOT_EXCLUDE("streaming session state; Quiesce() asserts no tickets are open at snapshot time")
  std::deque<StreamTicket> tickets_;
  FKDE_SNAPSHOT_EXCLUDE("session-local ticket counter; EnableStreaming resets it to 0 per session")
  std::uint64_t next_ticket_ = 0;
  FKDE_SNAPSHOT_EXCLUDE("streaming session state; a restored model starts in classic mode until re-enabled")
  std::size_t stream_depth_ = 0;

  // Periodic mode: ring buffer of recent feedback (Section 3.4 step 1).
  std::vector<Query> feedback_ring_;
  std::size_t ring_next_ = 0;
  std::size_t feedback_since_optimize_ = 0;
  std::size_t reoptimizations_ = 0;
};

/// Human-readable estimator names matching the paper's plots.
std::string KdeModeName(KdeSelectivityEstimator::Mode mode);

}  // namespace fkde

#endif  // FKDE_KDE_KDE_ESTIMATOR_H_
