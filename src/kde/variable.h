/// \file variable.h
/// \brief Variable (adaptive) KDE — the paper's Section 8 extension.
///
/// "Variable — or adaptive — KDE models are an extension of KDE using
/// distinct bandwidth parameters for each sample point" (Terrell & Scott
/// [41]). The classic Abramson/Breiman construction sets each point's
/// bandwidth scale from a pilot density estimate:
///
///   scale_i = (f_pilot(x_i) / g) ^ (-sensitivity)
///
/// where g is the geometric mean of the pilot densities and sensitivity
/// is typically 1/2: points in sparse regions smooth wider, points in
/// dense clusters smooth tighter. The scales plug into
/// `KdeEngine::SetPointScales`, after which estimation, gradients, and
/// the whole feedback-optimization machinery work unchanged (the chain
/// rule through h_j * scale_i is handled inside the engine).

#ifndef FKDE_KDE_VARIABLE_H_
#define FKDE_KDE_VARIABLE_H_

#include <vector>

#include "common/status.h"
#include "kde/engine.h"

namespace fkde {

/// \brief Knobs for pilot-density scale computation.
struct VariableKdeOptions {
  /// Abramson sensitivity exponent; 0 disables adaptivity, 1/2 is the
  /// classical square-root law.
  double sensitivity = 0.5;
  /// Scales are clamped into [1/max_ratio, max_ratio] to keep extreme
  /// low-density outliers from smearing mass over the whole domain.
  double max_ratio = 8.0;
};

/// Computes per-point bandwidth scales from a pilot density estimate of
/// the engine's own sample (leave-one-out, Gaussian pilot with the
/// engine's current bandwidth). O(s^2 d) on the device.
Result<std::vector<double>> ComputeVariableScales(
    KdeEngine* engine, const VariableKdeOptions& options = {});

/// Convenience: computes the scales and installs them into the engine.
Status EnableVariableKde(KdeEngine* engine,
                         const VariableKdeOptions& options = {});

}  // namespace fkde

#endif  // FKDE_KDE_VARIABLE_H_
