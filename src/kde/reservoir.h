/// \file reservoir.h
/// \brief Reservoir sampling for insert-only maintenance (Vitter [43]).
///
/// For insertions the paper keeps the device sample fresh with classic
/// reservoir sampling: the newly inserted tuple enters the sample with
/// probability s/|R|, replacing a uniformly random slot. The accept/reject
/// decision is made entirely on the host, so only tuples that actually
/// enter the sample cross the bus — optimal in transfers (Section 5.6).

#ifndef FKDE_KDE_RESERVOIR_H_
#define FKDE_KDE_RESERVOIR_H_

#include <cstddef>
#include <span>

#include "common/rng.h"
#include "kde/sample.h"

namespace fkde {

/// \brief Host-side reservoir decision maker for a device sample.
class ReservoirMaintainer {
 public:
  /// Maintains `sample`; `rng` provides the accept decisions. Both must
  /// outlive the maintainer.
  ReservoirMaintainer(DeviceSample* sample, Rng* rng)
      : sample_(sample), rng_(rng) {}

  /// Notifies the maintainer of an insert. `table_rows_after` is the
  /// relation cardinality including the new row. Returns the replaced
  /// sample slot, or SIZE_MAX when the row was rejected.
  std::size_t OnInsert(std::span<const double> row,
                       std::size_t table_rows_after);

  /// Inserts accepted into the sample so far (tests/diagnostics).
  std::size_t accepted() const { return accepted_; }
  std::size_t observed() const { return observed_; }

  /// Restores the accept/observe counters (snapshot warm restart).
  void RestoreCounters(std::size_t accepted, std::size_t observed) {
    accepted_ = accepted;
    observed_ = observed;
  }

 private:
  DeviceSample* sample_;
  Rng* rng_;
  std::size_t accepted_ = 0;
  std::size_t observed_ = 0;
};

}  // namespace fkde

#endif  // FKDE_KDE_RESERVOIR_H_
