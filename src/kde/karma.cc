#include "kde/karma.h"

#include <algorithm>
#include <cmath>

namespace fkde {

KarmaMaintainer::KarmaMaintainer(KdeEngine* engine,
                                 const KarmaOptions& options)
    : engine_(engine), options_(options) {
  FKDE_CHECK(engine != nullptr);
  FKDE_CHECK(options.k_max > 0.0);
  FKDE_CHECK(options.threshold < options.k_max);
  const std::size_t capacity = engine_->sample()->capacity();
  shards_.resize(engine_->num_shards());
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    Device* dev = engine_->sample()->shard_device(si);
    KarmaShard& sh = shards_[si];
    sh.karma = dev->CreateBuffer<double>(capacity);
    sh.flags = dev->CreateBuffer<std::uint32_t>((capacity + 31) / 32);
    // Sized once so the enqueued bitmap read-back never races a resize.
    sh.host_flags.resize((capacity + 31) / 32);
  }
  ResetAllKarma();
}

KarmaMaintainer::~KarmaMaintainer() {
  // A pending update holds pointers into the per-shard buffers.
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    engine_->sample()->shard_device(si)->default_queue()->Finish();
  }
}

void KarmaMaintainer::ResetAllKarma() {
  // Zero-initialize the Karma scores (one transfer per shard).
  const std::size_t capacity = engine_->sample()->capacity();
  std::vector<double> zeros(capacity, 0.0);
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    engine_->sample()->shard_device(si)->CopyToDevice(
        zeros.data(), zeros.size(), &shards_[si].karma);
  }
  epoch_ = engine_->sample()->migration_epoch();
}

double KarmaMaintainer::InsideContributionBound(
    const Box& box, const std::vector<double>& bandwidth) {
  // Appendix E: the center point of the region contributes
  //   p_max = prod_j erf((u_j - l_j) / (2 sqrt(2) h_j))            (19)
  // and the best point just outside the region along dimension j drops
  // that dimension's factor from erf(w/(2 sqrt(2) h)) (full width around
  // the center) to erf(w/(sqrt(2) h)) / 2 evaluated one-sided; condition
  // (20) bounds any outside contribution by
  //   p_max / 2 * max_j erf(w_j/(sqrt(2) h_j)) / erf(w_j/(2 sqrt(2) h_j)).
  const std::size_t d = box.dims();
  FKDE_CHECK(bandwidth.size() == d);
  constexpr double kInvSqrt2 = 0.7071067811865476;
  double p_max = 1.0;
  double max_ratio = 0.0;
  for (std::size_t j = 0; j < d; ++j) {
    const double width = box.Extent(j);
    const double half_arg = width * kInvSqrt2 / (2.0 * bandwidth[j]);
    const double full_arg = width * kInvSqrt2 / bandwidth[j];
    const double erf_half = std::erf(half_arg);
    p_max *= erf_half;
    if (erf_half > 0.0) {
      max_ratio = std::max(max_ratio, std::erf(full_arg) / erf_half);
    }
  }
  return 0.5 * p_max * max_ratio;
}

void KarmaMaintainer::EnqueueUpdate(const Box& box, double true_selectivity) {
  FKDE_CHECK_MSG(!update_pending_, "previous Karma update not collected");
  DeviceSample* sample = engine_->sample();
  const std::size_t s = engine_->sample_size();
  const double estimate = engine_->last_estimate();
  const double ds = static_cast<double>(s);

  // The scores are local-row indexed; a migration since the last pass
  // permuted the rows underneath them, so start the accumulation over.
  if (sample->migration_epoch() != epoch_) ResetAllKarma();

  // Appendix E shortcut: only meaningful for empty queries with the
  // Gaussian kernel (the bound is derived from the Gaussian CDF).
  double inside_bound = std::numeric_limits<double>::infinity();
  if (options_.empty_region_shortcut && true_selectivity == 0.0 &&
      engine_->kernel() == KernelType::kGaussian) {
    inside_bound = InsideContributionBound(box, engine_->bandwidth());
  }

  const LossType loss = options_.loss;
  const double lambda = options_.lambda;
  const double k_max = options_.k_max;
  const double threshold = options_.threshold;
  const double base_loss =
      EvaluateLoss(loss, estimate, true_selectivity, lambda);

  // Figure 3, step 9, per shard and concurrently: one pass over the
  // shard's rows updates every point's cumulative Karma and emits the
  // replacement bitmap. Each work item owns one 32-bit bitmap word (32
  // local rows), so concurrent groups never write the same word.
  // Enqueued, not waited for: it reuses the contributions retained from
  // the estimate (the shard's in-order queue keeps it reading the right
  // values) and runs while the database processes the next statement;
  // ~1 op per covered slot. The leave-one-out estimate (6) only needs the
  // GLOBAL estimate and the point's own contribution, so shards never
  // need each other's data.
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    KarmaShard& sh = shards_[si];
    const std::size_t rows = sample->shard_size(si);
    if (rows == 0) {
      sh.pending = Event();
      continue;
    }
    const double* contrib = engine_->shard_contributions(si).device_data();
    double* karma = sh.karma.device_data();
    std::uint32_t* flags = sh.flags.device_data();
    const std::size_t words = (rows + 31) / 32;
    CommandQueue* queue = sample->shard_device(si)->default_queue();
    const BufferAccess acc[] = {
        Reads(engine_->shard_contributions(si), 0, rows),
        ReadsWrites(sh.karma, 0, rows), Writes(sh.flags, 0, words)};
    queue->EnqueueLaunch(
        "karma_update", words, 32.0,
        [=](std::size_t begin, std::size_t end) {
          for (std::size_t w = begin; w < end; ++w) {
            std::uint32_t word = 0;
            const std::size_t lo = w * 32;
            const std::size_t hi = std::min(lo + 32, rows);
            for (std::size_t i = lo; i < hi; ++i) {
              // Leave-one-out estimate, eq. (6).
              const double without =
                  s > 1 ? (estimate * ds - contrib[i]) / (ds - 1.0)
                        : estimate;
              // Per-query Karma, eq. (7).
              const double k_query =
                  EvaluateLoss(loss, without, true_selectivity, lambda) -
                  base_loss;
              // Cumulative Karma with saturation, eq. (8).
              karma[i] = std::min(karma[i] + k_query, k_max);
              const bool below = karma[i] < threshold;
              // Appendix E: provably inside an empty region (cond. 20).
              const bool provably_stale = contrib[i] >= inside_bound;
              if (below || provably_stale) word |= 1u << (i - lo);
            }
            flags[w] = word;
          }
        },
        acc);

    // Enqueue the bitmap read-back (rows/8 bytes) behind the kernel; the
    // event is the collection handle.
    sh.pending =
        queue->EnqueueCopyToHost(sh.flags, 0, words, sh.host_flags.data());
  }
  update_pending_ = true;
}

std::vector<std::size_t> KarmaMaintainer::CollectPending() {
  FKDE_CHECK_MSG(update_pending_, "no enqueued Karma update to collect");
  for (KarmaShard& sh : shards_) {
    if (sh.pending.valid()) {
      sh.pending.Wait();
      sh.pending = Event();
    }
  }
  update_pending_ = false;
  DeviceSample* sample = engine_->sample();
  // A migration while the pass was in flight permuted the rows its bitmap
  // indexes — the results are stale. Discard them and restart the scores;
  // the next feedback rebuilds the pass against the new layout.
  if (sample->migration_epoch() != epoch_) {
    ResetAllKarma();
    return {};
  }
  std::vector<std::size_t> slots;
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    const std::size_t rows = sample->shard_size(si);
    const std::size_t words = (rows + 31) / 32;
    for (std::size_t w = 0; w < words; ++w) {
      std::uint32_t word = shards_[si].host_flags[w];
      while (word != 0) {
        const unsigned bit = static_cast<unsigned>(__builtin_ctz(word));
        slots.push_back(sample->GlobalSlot(si, w * 32 + bit));
        word &= word - 1;
      }
    }
  }
  std::sort(slots.begin(), slots.end());
  return slots;
}

std::vector<std::size_t> KarmaMaintainer::Update(const Box& box,
                                                 double true_selectivity) {
  EnqueueUpdate(box, true_selectivity);
  return CollectPending();
}

void KarmaMaintainer::ResetSlot(std::size_t slot) {
  DeviceSample* sample = engine_->sample();
  FKDE_CHECK(slot < sample->size());
  const auto [shard, local] = sample->LocateSlot(slot);
  const double zero = 0.0;
  sample->shard_device(shard)->CopyToDevice(&zero, 1, &shards_[shard].karma,
                                            local);
}

Status KarmaMaintainer::RestoreKarma(std::span<const double> karma_by_slot) {
  if (update_pending_) {
    return Status::FailedPrecondition(
        "cannot restore Karma under a pending update");
  }
  DeviceSample* sample = engine_->sample();
  if (karma_by_slot.size() != sample->size()) {
    return Status::InvalidArgument("karma arity does not match sample size");
  }
  std::vector<double> staging;
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    const std::size_t rows = sample->shard_size(si);
    if (rows == 0) continue;
    staging.resize(rows);
    for (std::size_t local = 0; local < rows; ++local) {
      staging[local] = karma_by_slot[sample->GlobalSlot(si, local)];
    }
    sample->shard_device(si)->CopyToDevice(staging.data(), rows,
                                           &shards_[si].karma);
  }
  epoch_ = sample->migration_epoch();
  return Status::OK();
}

std::vector<double> KarmaMaintainer::ReadKarma() {
  DeviceSample* sample = engine_->sample();
  const std::size_t s = engine_->sample_size();
  std::vector<double> host(s);
  std::vector<double> staging;
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    const std::size_t rows = sample->shard_size(si);
    if (rows == 0) continue;
    staging.resize(rows);
    sample->shard_device(si)->CopyToHost(shards_[si].karma, 0, rows,
                                        staging.data());
    for (std::size_t local = 0; local < rows; ++local) {
      host[sample->GlobalSlot(si, local)] = staging[local];
    }
  }
  return host;
}

}  // namespace fkde
