/// \file scv.h
/// \brief Smoothed Cross-Validation bandwidth selection (diagonal).
///
/// The paper's "KDE SCV" baseline picks the bandwidth with the R package
/// ks' `Hscv.diag` — the Smoothed Cross Validation criterion of Hall,
/// Marron & Park, studied for the multivariate case by Duong & Hazelton
/// [11]. For a diagonal bandwidth H = diag(h_1..h_d) with Gaussian kernels
/// the criterion has the closed form
///
///   SCV(h) = (4 pi)^(-d/2) / (n * prod_k h_k)
///          + n^(-2) * sum_{i,j} [ phi_{2h^2+2g^2}(d_ij)
///                                 - 2 phi_{h^2+2g^2}(d_ij)
///                                 + phi_{2g^2}(d_ij) ]
///
/// where phi_{s^2} is the product of per-dimension normal densities with
/// variance s_k^2, d_ij are pairwise sample differences, and g is a pilot
/// bandwidth (normal-reference / Scott pilot). We minimize SCV with the
/// repo's own box-constrained optimizer, using the analytic gradient.
///
/// This is a *construction-time* selector: it runs on a host copy of the
/// sample (one metered read-back), independent of query feedback.

#ifndef FKDE_KDE_SCV_H_
#define FKDE_KDE_SCV_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/status.h"

namespace fkde {

/// \brief Knobs for the SCV selector.
struct ScvOptions {
  /// Bounds for each h_k, as multiples of the Scott bandwidth.
  double min_factor = 1e-2;
  double max_factor = 1e2;
  std::size_t max_iterations = 40;
  /// Random restarts of the local optimizer (the criterion is smooth and
  /// usually unimodal; one extra start suffices).
  std::size_t restarts = 1;
  /// The criterion is O(n^2 d); samples larger than this are thinned to
  /// this many rows for selection (statistically harmless at these sizes,
  /// and the selected bandwidth is rescaled per Scott's n^(-1/(d+4))
  /// factor to account for the smaller pilot sample).
  std::size_t max_rows = 512;
  std::uint64_t seed = 42;
};

/// Evaluates SCV(h) for a host-resident row-major sample (`n` rows of
/// `dims` values). `pilot` is the per-dimension pilot bandwidth g. If
/// `gradient` is non-null it receives dSCV/dh.
double ScvCriterion(std::span<const double> sample, std::size_t n,
                    std::size_t dims, std::span<const double> bandwidth,
                    std::span<const double> pilot,
                    std::vector<double>* gradient);

/// Selects the diagonal SCV bandwidth for the sample. `scott` is used both
/// as the pilot bandwidth and as the optimization starting point / bound
/// anchor. Returns the minimizing bandwidth.
Result<std::vector<double>> ScvSelectBandwidth(std::span<const double> sample,
                                               std::size_t n,
                                               std::size_t dims,
                                               std::span<const double> scott,
                                               const ScvOptions& options = {});

}  // namespace fkde

#endif  // FKDE_KDE_SCV_H_
