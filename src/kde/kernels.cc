#include "kde/kernels.h"

#include <cctype>

namespace fkde {

Result<KernelType> ParseKernelName(const std::string& name) {
  std::string lower;
  for (char c : name) lower += static_cast<char>(std::tolower(c));
  if (lower == "gaussian" || lower == "gauss") return KernelType::kGaussian;
  if (lower == "epanechnikov" || lower == "epa") {
    return KernelType::kEpanechnikov;
  }
  return Status::InvalidArgument("unknown kernel: " + name);
}

const char* KernelName(KernelType type) {
  switch (type) {
    case KernelType::kGaussian:
      return "gaussian";
    case KernelType::kEpanechnikov:
      return "epanechnikov";
  }
  return "unknown";
}

}  // namespace fkde
