#include "kde/adaptive.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace fkde {

AdaptiveBandwidth::AdaptiveBandwidth(std::size_t dims,
                                     const AdaptiveOptions& options)
    : options_(options),
      dims_(dims),
      grad_accum_(dims, 0.0),
      magnitude_avg_(dims, 0.0),
      rates_(dims, options.lr_initial),
      prev_grad_(dims, 0.0) {
  FKDE_CHECK(dims > 0);
  FKDE_CHECK(options.mini_batch > 0);
  FKDE_CHECK(options.alpha > 0.0 && options.alpha < 1.0);
  FKDE_CHECK(options.lr_min > 0.0 && options.lr_min <= options.lr_max);
}

void AdaptiveBandwidth::ResetBatch() {
  std::fill(grad_accum_.begin(), grad_accum_.end(), 0.0);
  batch_count_ = 0;
}

AdaptiveBandwidthState AdaptiveBandwidth::SaveState() const {
  AdaptiveBandwidthState state;
  state.grad_accum = grad_accum_;
  state.batch_count = batch_count_;
  state.magnitude_avg = magnitude_avg_;
  state.rates = rates_;
  state.prev_grad = prev_grad_;
  state.has_prev_grad = has_prev_grad_;
  state.updates_applied = updates_applied_;
  return state;
}

Status AdaptiveBandwidth::RestoreState(const AdaptiveBandwidthState& state) {
  if (state.grad_accum.size() != dims_ ||
      state.magnitude_avg.size() != dims_ || state.rates.size() != dims_ ||
      state.prev_grad.size() != dims_) {
    return Status::InvalidArgument("adaptive state arity mismatch");
  }
  grad_accum_ = state.grad_accum;
  batch_count_ = state.batch_count;
  magnitude_avg_ = state.magnitude_avg;
  rates_ = state.rates;
  prev_grad_ = state.prev_grad;
  has_prev_grad_ = state.has_prev_grad;
  updates_applied_ = state.updates_applied;
  return Status::OK();
}

bool AdaptiveBandwidth::Observe(std::span<const double> loss_grad,
                                std::vector<double>* bandwidth) {
  FKDE_CHECK(loss_grad.size() == dims_);
  FKDE_CHECK(bandwidth->size() == dims_);
  // Listing 1, line 9: accumulate the gradient on the mini-batch. In
  // logarithmic mode the gradient is chained to log-space first
  // (Appendix D, eq. 18: dL/d log h = dL/dh * h).
  for (std::size_t k = 0; k < dims_; ++k) {
    const double g = options_.log_updates
                         ? loss_grad[k] * (*bandwidth)[k]
                         : loss_grad[k];
    grad_accum_[k] += g;
  }
  ++batch_count_;
  if (batch_count_ < options_.mini_batch) return false;

  // Listing 1, line 12: average the accumulated gradient.
  std::vector<double> mean_grad(dims_);
  for (std::size_t k = 0; k < dims_; ++k) {
    mean_grad[k] = grad_accum_[k] / static_cast<double>(batch_count_);
  }
  ResetBatch();
  ApplyUpdate(mean_grad, bandwidth);
  return true;
}

bool AdaptiveBandwidth::ObserveMiniBatch(
    std::span<const double> mean_loss_grad, std::vector<double>* bandwidth) {
  FKDE_CHECK(mean_loss_grad.size() == dims_);
  FKDE_CHECK(bandwidth->size() == dims_);
  // The device pass already averaged dL/dh over the mini-batch; only the
  // log-space chaining (Appendix D) remains. The bandwidth is constant
  // within a mini-batch, so chaining the mean equals the mean of the
  // chained per-query gradients that Observe would have accumulated.
  std::vector<double> mean_grad(dims_);
  for (std::size_t k = 0; k < dims_; ++k) {
    mean_grad[k] = options_.log_updates
                       ? mean_loss_grad[k] * (*bandwidth)[k]
                       : mean_loss_grad[k];
  }
  ResetBatch();
  ApplyUpdate(mean_grad, bandwidth);
  return true;
}

void AdaptiveBandwidth::ApplyUpdate(std::span<const double> mean_grad,
                                    std::vector<double>* bandwidth) {
  constexpr double kEps = 1e-12;
  for (std::size_t k = 0; k < dims_; ++k) {
    const double g = mean_grad[k];
    // Line 14: running average of gradient magnitudes (RMS).
    magnitude_avg_[k] =
        options_.alpha * magnitude_avg_[k] + (1.0 - options_.alpha) * g * g;
    // Lines 15-16: Rprop-style learning-rate adaptation on sign agreement.
    if (has_prev_grad_) {
      if (g * prev_grad_[k] > 0.0) {
        rates_[k] = std::min(rates_[k] * options_.lr_increase,
                             options_.lr_max);
      } else if (g * prev_grad_[k] < 0.0) {
        rates_[k] = std::max(rates_[k] * options_.lr_decrease,
                             options_.lr_min);
      }
    }
    prev_grad_[k] = g;

    // Line 17: scaled gradient step.
    const double step = rates_[k] * g / std::sqrt(magnitude_avg_[k] + kEps);
    if (options_.log_updates) {
      // Appendix D: update log h; positivity holds by construction, the
      // half-step safeguard is removed (it would forbid h < 1). The step
      // is clamped so one mini-batch cannot change h by more than e^10 —
      // purely a numeric overflow guard, far beyond any sane update.
      const double clamped = std::clamp(step, -10.0, 10.0);
      (*bandwidth)[k] = (*bandwidth)[k] * std::exp(-clamped);
    } else {
      // Positivity safeguard: never move more than half way to zero.
      const double limited = std::min(step, 0.5 * (*bandwidth)[k]);
      (*bandwidth)[k] -= limited;
    }
    FKDE_DCHECK((*bandwidth)[k] > 0.0);
  }
  has_prev_grad_ = true;
  ++updates_applied_;
}

}  // namespace fkde
