#include "kde/batch.h"

#include <cmath>

namespace fkde {

double MeanWorkloadLoss(KdeEngine* engine, std::span<const Query> workload,
                        LossType loss, double lambda) {
  FKDE_CHECK(!workload.empty());
  double total = 0.0;
  for (const Query& query : workload) {
    total += EvaluateLoss(loss, engine->Estimate(query.box),
                          query.selectivity, lambda);
  }
  return total / static_cast<double>(workload.size());
}

Result<BatchReport> OptimizeBandwidthBatch(KdeEngine* engine,
                                           std::span<const Query> training,
                                           const BatchOptions& options,
                                           Rng* rng) {
  if (training.empty()) {
    return Status::InvalidArgument("batch optimization needs training queries");
  }
  const std::size_t d = engine->dims();
  const std::vector<double> start = engine->bandwidth();
  const double q = static_cast<double>(training.size());

  BatchReport report;
  report.initial_error =
      MeanWorkloadLoss(engine, training, options.loss, options.lambda);

  // Decision variables are either h or log h; `decode` maps them back to a
  // bandwidth vector.
  auto decode = [&](std::span<const double> x) {
    std::vector<double> h(d);
    for (std::size_t k = 0; k < d; ++k) {
      h[k] = options.log_space ? std::exp(x[k]) : x[k];
    }
    return h;
  };

  Problem problem;
  problem.lower.resize(d);
  problem.upper.resize(d);
  std::vector<double> x0(d);
  for (std::size_t k = 0; k < d; ++k) {
    const double lo = start[k] * options.min_factor;
    const double hi = start[k] * options.max_factor;
    problem.lower[k] = options.log_space ? std::log(lo) : lo;
    problem.upper[k] = options.log_space ? std::log(hi) : hi;
    x0[k] = options.log_space ? std::log(start[k]) : start[k];
  }

  std::size_t evaluations = 0;
  problem.objective = [&](std::span<const double> x,
                          std::span<double> grad) -> double {
    ++evaluations;
    const std::vector<double> h = decode(x);
    const Status set = engine->SetBandwidth(h);
    if (!set.ok()) return std::numeric_limits<double>::infinity();

    double total = 0.0;
    std::vector<double> total_grad(d, 0.0);
    std::vector<double> dest_dh;
    for (const Query& query : training) {
      double estimate;
      if (grad.empty()) {
        estimate = engine->Estimate(query.box);
      } else {
        estimate = engine->EstimateWithGradient(query.box, &dest_dh);
      }
      total += EvaluateLoss(options.loss, estimate, query.selectivity,
                            options.lambda);
      if (!grad.empty()) {
        const double dloss = LossDerivative(options.loss, estimate,
                                            query.selectivity, options.lambda);
        for (std::size_t k = 0; k < d; ++k) {
          total_grad[k] += dloss * dest_dh[k];
        }
      }
    }
    if (!grad.empty()) {
      for (std::size_t k = 0; k < d; ++k) {
        // Appendix D chain rule: dL/d(log h) = dL/dh * h.
        grad[k] = total_grad[k] / q * (options.log_space ? h[k] : 1.0);
      }
    }
    return total / q;
  };

  const OptimizeResult result =
      MinimizeMlsl(problem, x0, rng, options.global, options.local);
  FKDE_RETURN_NOT_OK(engine->SetBandwidth(decode(result.x)));

  report.final_error = result.f;
  report.evaluations = evaluations;
  report.converged = result.converged;
  return report;
}

}  // namespace fkde
