#include "kde/batch.h"

#include <cmath>

namespace fkde {
namespace {

// Splits a workload into the parallel arrays the batched engine API takes.
void SplitWorkload(std::span<const Query> workload, std::vector<Box>* boxes,
                   std::vector<double>* truths) {
  boxes->reserve(workload.size());
  truths->reserve(workload.size());
  for (const Query& query : workload) {
    boxes->push_back(query.box);
    truths->push_back(query.selectivity);
  }
}

}  // namespace

double MeanWorkloadLoss(KdeEngine* engine, std::span<const Query> workload,
                        LossType loss, double lambda) {
  FKDE_CHECK(!workload.empty());
  std::vector<Box> boxes;
  std::vector<double> truths;
  SplitWorkload(workload, &boxes, &truths);
  return engine->EstimateBatchLoss(boxes, truths, loss, lambda,
                                   /*gradient=*/nullptr);
}

Result<BatchReport> OptimizeBandwidthBatch(KdeEngine* engine,
                                           std::span<const Query> training,
                                           const BatchOptions& options,
                                           Rng* rng) {
  if (training.empty()) {
    return Status::InvalidArgument("batch optimization needs training queries");
  }
  const std::size_t d = engine->dims();
  const std::vector<double> start = engine->bandwidth();

  BatchReport report;
  report.initial_error =
      MeanWorkloadLoss(engine, training, options.loss, options.lambda);

  // Decision variables are either h or log h; `decode` maps them back to a
  // bandwidth vector.
  auto decode = [&](std::span<const double> x) {
    std::vector<double> h(d);
    for (std::size_t k = 0; k < d; ++k) {
      h[k] = options.log_space ? std::exp(x[k]) : x[k];
    }
    return h;
  };

  Problem problem;
  problem.lower.resize(d);
  problem.upper.resize(d);
  std::vector<double> x0(d);
  for (std::size_t k = 0; k < d; ++k) {
    const double lo = start[k] * options.min_factor;
    const double hi = start[k] * options.max_factor;
    problem.lower[k] = options.log_space ? std::log(lo) : lo;
    problem.upper[k] = options.log_space ? std::log(hi) : hi;
    x0[k] = options.log_space ? std::log(start[k]) : start[k];
  }

  // The whole training workload is evaluated as ONE batched device pass
  // per objective call: one descriptor upload, one fused kernel over the
  // s×m grid, segmented reductions, and (for gradient calls) the
  // loss-weighted fold — instead of m round-trips per evaluation.
  std::vector<Box> boxes;
  std::vector<double> truths;
  SplitWorkload(training, &boxes, &truths);

  std::size_t evaluations = 0;
  std::vector<double> mean_grad;
  problem.objective = [&](std::span<const double> x,
                          std::span<double> grad) -> double {
    ++evaluations;
    const std::vector<double> h = decode(x);
    const Status set = engine->SetBandwidth(h);
    if (!set.ok()) return std::numeric_limits<double>::infinity();

    const double mean_loss = engine->EstimateBatchLoss(
        boxes, truths, options.loss, options.lambda,
        grad.empty() ? nullptr : &mean_grad);
    if (!grad.empty()) {
      for (std::size_t k = 0; k < d; ++k) {
        // Appendix D chain rule: dL/d(log h) = dL/dh * h.
        grad[k] = mean_grad[k] * (options.log_space ? h[k] : 1.0);
      }
    }
    return mean_loss;
  };

  const OptimizeResult result =
      MinimizeMlsl(problem, x0, rng, options.global, options.local);
  FKDE_RETURN_NOT_OK(engine->SetBandwidth(decode(result.x)));

  report.final_error = result.f;
  report.evaluations = evaluations;
  report.converged = result.converged;
  return report;
}

}  // namespace fkde
