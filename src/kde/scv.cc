#include "kde/scv.h"

#include <cmath>
#include <mutex>

#include "common/logging.h"
#include "common/rng.h"
#include "opt/optimizer.h"
#include "parallel/thread_pool.h"

namespace fkde {

namespace {

constexpr double kInvSqrt2Pi = 0.3989422804014327;
constexpr std::size_t kMaxDims = 32;

/// Product of per-dimension normal densities with variances var[k],
/// evaluated at difference vector delta; optionally accumulates the
/// h-gradient factor d log(phi)/dh_k = a*h_k*(delta_k^2/var_k^2 - 1/var_k)
/// into dlog (for variance form var_k = a*h_k^2 + b*g_k^2).
double ProductNormal(const double* delta, const double* var, std::size_t d,
                     double a, const double* h, double* dlog) {
  double log_phi = 0.0;
  for (std::size_t k = 0; k < d; ++k) {
    log_phi += -0.5 * std::log(var[k]) - 0.5 * delta[k] * delta[k] / var[k];
  }
  const double phi =
      std::exp(log_phi) * std::pow(kInvSqrt2Pi, static_cast<double>(d));
  if (dlog != nullptr && a != 0.0) {
    for (std::size_t k = 0; k < d; ++k) {
      dlog[k] = a * h[k] *
                (delta[k] * delta[k] / (var[k] * var[k]) - 1.0 / var[k]);
    }
  }
  return phi;
}

}  // namespace

double ScvCriterion(std::span<const double> sample, std::size_t n,
                    std::size_t dims, std::span<const double> bandwidth,
                    std::span<const double> pilot,
                    std::vector<double>* gradient) {
  FKDE_CHECK(sample.size() == n * dims);
  FKDE_CHECK(bandwidth.size() == dims && pilot.size() == dims);
  FKDE_CHECK(dims <= kMaxDims);
  const std::size_t d = dims;
  const double* h = bandwidth.data();
  const double* g = pilot.data();
  const double dn = static_cast<double>(n);

  // First term: (4 pi)^(-d/2) / (n prod h_k).
  double prod_h = 1.0;
  for (std::size_t k = 0; k < d; ++k) prod_h *= h[k];
  const double first =
      std::pow(4.0 * M_PI, -0.5 * static_cast<double>(d)) / (dn * prod_h);

  // Per-dimension variances of the three convolution terms.
  double var_a[kMaxDims], var_b[kMaxDims], var_c[kMaxDims];
  for (std::size_t k = 0; k < d; ++k) {
    var_a[k] = 2.0 * h[k] * h[k] + 2.0 * g[k] * g[k];
    var_b[k] = h[k] * h[k] + 2.0 * g[k] * g[k];
    var_c[k] = 2.0 * g[k] * g[k];
  }

  // Pair sum, parallelized over the first index with thread-local
  // accumulators. Diagonal terms (delta = 0) are included once; off
  // diagonal pairs are counted twice via symmetry.
  double pair_sum = 0.0;
  std::vector<double> pair_grad(d, 0.0);
  std::mutex merge_mu;
  ThreadPool::Global().ParallelFor(
      n, 16, [&](std::size_t begin, std::size_t end) {
        double local_sum = 0.0;
        double local_grad[kMaxDims] = {};
        double delta[kMaxDims];
        double dlog_a[kMaxDims], dlog_b[kMaxDims];
        for (std::size_t i = begin; i < end; ++i) {
          const double* xi = sample.data() + i * d;
          for (std::size_t j = i; j < n; ++j) {
            const double* xj = sample.data() + j * d;
            for (std::size_t k = 0; k < d; ++k) delta[k] = xi[k] - xj[k];
            const double weight = (i == j) ? 1.0 : 2.0;
            const double phi_a = ProductNormal(delta, var_a, d, 2.0, h,
                                               gradient ? dlog_a : nullptr);
            const double phi_b = ProductNormal(delta, var_b, d, 1.0, h,
                                               gradient ? dlog_b : nullptr);
            const double phi_c =
                ProductNormal(delta, var_c, d, 0.0, h, nullptr);
            local_sum += weight * (phi_a - 2.0 * phi_b + phi_c);
            if (gradient) {
              for (std::size_t k = 0; k < d; ++k) {
                local_grad[k] += weight * (phi_a * dlog_a[k] -
                                           2.0 * phi_b * dlog_b[k]);
              }
            }
          }
        }
        std::lock_guard<std::mutex> lock(merge_mu);
        pair_sum += local_sum;
        for (std::size_t k = 0; k < d; ++k) pair_grad[k] += local_grad[k];
      });

  const double value = first + pair_sum / (dn * dn);
  if (gradient) {
    gradient->resize(d);
    for (std::size_t k = 0; k < d; ++k) {
      (*gradient)[k] = -first / h[k] + pair_grad[k] / (dn * dn);
    }
  }
  return value;
}

Result<std::vector<double>> ScvSelectBandwidth(std::span<const double> sample,
                                               std::size_t n,
                                               std::size_t dims,
                                               std::span<const double> scott,
                                               const ScvOptions& options) {
  if (sample.size() != n * dims) {
    return Status::InvalidArgument("sample size mismatch");
  }
  if (scott.size() != dims) {
    return Status::InvalidArgument("pilot bandwidth arity mismatch");
  }
  for (double h : scott) {
    if (!(h > 0.0)) {
      return Status::InvalidArgument("pilot bandwidth must be positive");
    }
  }

  // Thin oversized samples: SCV is O(n^2 d) per evaluation. The selected
  // bandwidth is rescaled from the thinned size back to the full size by
  // the n^(-1/(d+4)) law so the returned h matches the full sample.
  std::vector<double> thinned;
  std::span<const double> active = sample;
  std::size_t active_n = n;
  double rescale = 1.0;
  if (n > options.max_rows && options.max_rows > 0) {
    Rng thin_rng(options.seed ^ 0x5bd1e995);
    thinned.reserve(options.max_rows * dims);
    // Uniform stride-free reservoir pick of max_rows rows.
    std::vector<std::size_t> picks(n);
    for (std::size_t i = 0; i < n; ++i) picks[i] = i;
    thin_rng.Shuffle(picks);
    picks.resize(options.max_rows);
    for (std::size_t i : picks) {
      thinned.insert(thinned.end(), sample.begin() + i * dims,
                     sample.begin() + (i + 1) * dims);
    }
    active = thinned;
    active_n = options.max_rows;
    const double exponent = -1.0 / (static_cast<double>(dims) + 4.0);
    rescale = std::pow(static_cast<double>(n), exponent) /
              std::pow(static_cast<double>(active_n), exponent);
  }

  // Optimize in log space for positivity and better conditioning.
  Problem problem;
  problem.lower.resize(dims);
  problem.upper.resize(dims);
  std::vector<double> x0(dims);
  for (std::size_t k = 0; k < dims; ++k) {
    problem.lower[k] = std::log(scott[k] * options.min_factor);
    problem.upper[k] = std::log(scott[k] * options.max_factor);
    x0[k] = std::log(scott[k]);
  }
  std::vector<double> pilot(scott.begin(), scott.end());
  problem.objective = [&](std::span<const double> x,
                          std::span<double> grad) -> double {
    std::vector<double> h(dims);
    for (std::size_t k = 0; k < dims; ++k) h[k] = std::exp(x[k]);
    std::vector<double> grad_h;
    const double f = ScvCriterion(active, active_n, dims, h, pilot,
                                  grad.empty() ? nullptr : &grad_h);
    if (!grad.empty()) {
      for (std::size_t k = 0; k < dims; ++k) grad[k] = grad_h[k] * h[k];
    }
    return f;
  };

  LocalOptions local;
  local.max_iterations = options.max_iterations;
  GlobalOptions global;
  global.num_samples = 16;
  global.num_rounds = 1;
  global.starts_per_round = options.restarts;
  Rng rng(options.seed);
  const OptimizeResult result =
      MinimizeMlsl(problem, x0, &rng, global, local);

  std::vector<double> bandwidth(dims);
  for (std::size_t k = 0; k < dims; ++k) {
    bandwidth[k] = std::exp(result.x[k]) * rescale;
  }
  return bandwidth;
}

}  // namespace fkde
