/// \file engine.h
/// \brief Device-side KDE math: estimation, bandwidth gradient, Scott init.
///
/// `KdeEngine` is the computational core shared by every KDE estimator
/// variant (heuristic, SCV, batch-optimal, adaptive). It owns the
/// device-resident sample and bandwidth and implements, as device kernels:
///
///  * the range-selectivity estimate p̂_H(Ω) — eq. (2) with the per-point
///    closed form eq. (13), a parallel map over sample points followed by
///    the binary-tree reduction (paper Section 5.4, Figure 3 steps 1-4);
///  * the estimator gradient ∂p̂_H(Ω)/∂h_i — eq. (15)-(17), either
///    synchronously or ENQUEUED on the device's command queue so it runs
///    while the database executes the query (Section 5.5, steps 5-6:
///    `EnqueueGradient`/`CollectGradient`);
///  * Scott's rule — eq. (3), via parallel sum / sum-of-squares reductions
///    and the variance identity (Section 5.2).
///
/// Per-point contributions are retained on the device after each estimate
/// so the Karma maintenance pass can reuse them (Section 5.6, step 9).
///
/// ## Sharded execution
///
/// Over a multi-device sample (see sample.h) every hot path runs
/// per-shard: each shard's bounds upload, kernels, segmented reduction and
/// partial read-back are ENQUEUED back-to-back on that shard's own
/// in-order `CommandQueue` — so the N devices crunch concurrently — and
/// the host waits on all shards' read-back events, then folds the partial
/// sums/gradients (sums over shards are exact; each shard's reduction
/// keeps the single-device group tree). After every folded pass the
/// engine feeds the measured per-shard busy time back into the sample's
/// rebalancer and applies any resulting migration before the *next* pass,
/// never under enqueued work. On a single-shard sample the generic path
/// degenerates to exactly the pre-sharding launch/transfer sequence
/// (pinned by batch_launch_test).

#ifndef FKDE_KDE_ENGINE_H_
#define FKDE_KDE_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/status.h"
#include "data/box.h"
#include "kde/kernel_backend.h"
#include "kde/kernels.h"
#include "kde/loss.h"
#include "kde/sample.h"
#include "parallel/device.h"

namespace fkde {

/// \brief KDE estimation engine over a device-resident sample.
class KdeEngine {
 public:
  /// Wraps an already-loaded sample. The engine keeps a pointer; the
  /// sample must outlive the engine. Bandwidth starts at Scott's rule.
  KdeEngine(DeviceSample* sample, KernelType kernel);

  /// Drains every shard's device queue so no enqueued command outlives
  /// the engine's buffers (command_queue.h lifetime discipline).
  ~KdeEngine();

  std::size_t dims() const { return sample_->dims(); }
  std::size_t sample_size() const { return sample_->size(); }
  KernelType kernel() const { return kernel_; }
  DeviceSample* sample() { return sample_; }
  /// Primary (shard-0) device.
  Device* device() const { return sample_->device(); }
  std::size_t num_shards() const { return shards_.size(); }

  /// Current (diagonal) bandwidth, host copy.
  const std::vector<double>& bandwidth() const { return bandwidth_; }

  /// Sets the bandwidth; values must be positive and finite. The new
  /// bandwidth is transferred to every shard's device (one metered
  /// 8d-byte transfer each — the bandwidth is replicated, not sharded).
  /// Blocking, so the host-side copy in `bandwidth_` may be reused as the
  /// transfer staging without lifetime hazards; at 8d bytes the wait is a
  /// no-op on the modeled timeline.
  Status SetBandwidth(std::span<const double> bandwidth);

  /// Variable-KDE extension (paper Section 8): installs per-point
  /// bandwidth scale factors, so point i smooths with h_j * scale[i] in
  /// every dimension j (Terrell & Scott's adaptive kernel model). Scales
  /// are indexed by GLOBAL sample slot, must be positive and of arity
  /// sample_size(). One metered transfer per shard; a host copy is kept
  /// so shard migration can re-scatter the scales.
  Status SetPointScales(std::span<const double> scales);

  /// Removes per-point scales (back to the fixed-bandwidth model).
  void ClearPointScales() { has_scales_ = false; }
  bool has_point_scales() const { return has_scales_; }

  /// Host copy of the per-point scales, global-slot indexed (snapshot
  /// serialization). Meaningful only while `has_point_scales()`.
  const std::vector<double>& point_scales_host() const {
    return scales_host_;
  }

  /// Computes Scott's rule (eq. 3) from the device-resident sample via
  /// parallel reductions: h_i = s^(-1/(d+4)) * sigma_i. Per-shard moment
  /// kernels run concurrently; the per-dimension sums fold on the host.
  std::vector<double> ComputeScottBandwidth();

  /// Estimates the selectivity of `box` (eq. 2). Transfers the query
  /// bounds in, runs the contribution kernel and reduction on every
  /// shard, transfers the per-shard scalar sums out and folds them.
  /// Per-point contributions stay on each shard's device.
  double Estimate(const Box& box);

  /// Estimate plus the gradient ∂p̂/∂h_i (eq. 17), fully synchronous —
  /// the bandwidth-optimization path. `gradient->size()` becomes dims().
  /// For the adaptive feedback loop use `EnqueueGradient` instead, which
  /// hides the gradient work behind query execution.
  double EstimateWithGradient(const Box& box, std::vector<double>* gradient);

  /// Enqueues the Section 5.5 gradient pass (steps 5-6) for the box of
  /// the LAST `Estimate` call without blocking: per shard, the fused
  /// partials kernel, ONE segmented reduction over the d dim-major
  /// partial segments, and a d-double read-back. The devices crunch while
  /// the database executes the query; `CollectGradient` waits on the
  /// per-shard events when the feedback arrives. Any previously pending
  /// gradient is discarded. Does not touch the retained contributions.
  /// Returns the last shard's read-back event (all shards' events are
  /// held internally).
  Event EnqueueGradient();

  /// Waits for the pending `EnqueueGradient` pass, folds the per-shard
  /// partial gradients and writes ∂p̂/∂h (arity dims()) into `gradient`.
  /// Requires `gradient_pending()`.
  void CollectGradient(std::vector<double>* gradient);

  /// True between `EnqueueGradient` and `CollectGradient`.
  bool gradient_pending() const { return gradient_pending_; }

  /// Batched estimation: uploads all `boxes.size()` query bounds in ONE
  /// transfer per shard, runs one fused contribution kernel over the
  /// s_i × m grid per shard (each work item owns a sample point and loops
  /// over a query tile), reduces all segments with the segmented
  /// reduction, reads each shard's m partial sums back in one transfer
  /// and folds them — O(1) launches in the query count instead of the
  /// ~m·log(s) launches of an Estimate loop. On one shard this is
  /// bit-identical to per-query `Estimate` calls. `estimates.size()` must
  /// equal `boxes.size()`. With m == 0 the call is a metered no-op: no
  /// upload, no launch, no read-back. Does not touch the retained
  /// single-query contributions or `last_estimate()`.
  void EstimateBatch(std::span<const Box> boxes, std::span<double> estimates);

  /// Batched estimate + per-query bandwidth gradients (eq. 17 via the
  /// same prefix/suffix-product scheme as `EstimateWithGradient`).
  /// `gradients` is query-major with arity boxes.size() * dims():
  /// gradients[q * dims() + k] = ∂p̂_q/∂h_k. On one shard results are
  /// bit-identical to per-query `EstimateWithGradient` calls.
  void EstimateBatchWithGradient(std::span<const Box> boxes,
                                 std::span<double> estimates,
                                 std::span<double> gradients);

  /// Fused batched objective evaluation for bandwidth optimization
  /// (problem (5)): estimates all boxes, evaluates `loss` against
  /// `truths`, and returns the MEAN loss over the batch. When `gradient`
  /// is non-null it receives the gradient of the mean loss w.r.t. the
  /// bandwidth (arity dims()). On one shard the per-query ∂L/∂p̂ factors
  /// of eq. (14) are folded into a device-side reduction pass, so the
  /// whole evaluation costs O(1) launches, one descriptor upload (bounds
  /// + truths) and one (d+1)-double read-back — instead of the ~m·(d+2)
  /// launches and m·(d+1) read-backs of a per-query loop. Across shards
  /// the per-query estimates/gradients fold on the host first (same math,
  /// summation order differs only across shard boundaries).
  double EstimateBatchLoss(std::span<const Box> boxes,
                           std::span<const double> truths, LossType loss,
                           double lambda, std::vector<double>* gradient);

  /// Selectivity of `box` at the last Estimate/EstimateWithGradient call
  /// (or the estimate installed by `SetFeedbackContext` while streaming).
  double last_estimate() const { return last_estimate_; }

  // -- Streaming slot ring (Section 5.5 pipelining, N queries deep) -----
  //
  // The classic per-query cycle — Estimate, EnqueueGradient, feedback,
  // CollectGradient — keeps ONE query's device state resident (slot 0).
  // Streaming generalizes that state into a ring of `depth` descriptor
  // slots per shard: `BeginEstimateSlot(box, k % depth)` enqueues query
  // k's full estimate (+ gradient) chain without waiting, so the chain
  // for query k+1 enters the in-order queues while query k's gradient
  // and Karma feedback are still pending on the device. Every command
  // touches only its slot's buffers, so the per-device in-order queue is
  // the only ordering needed: slot reuse across the ring wrap (query
  // k+depth reusing query k's slot) is a WAR hazard resolved by queue
  // order, which the strict hazard checker verifies. Modeled time never
  // feeds back into the math, so a streamed schedule produces bitwise
  // the estimates of its fully-drained replay.

  /// Grows every shard's slot ring to `depth` (>= 1) and freezes the
  /// sample rebalancer: migrations would permute rows under enqueued
  /// slot chains AND make results depend on drain timing. Idempotent;
  /// growing an active ring is allowed, shrinking never happens here.
  Status EnableStreaming(std::size_t depth);

  /// Drains every shard queue, releases slots 1.., unfreezes the
  /// rebalancer and resets the feedback slot to 0. Requires no
  /// uncollected slot passes (the caller owns ticket accounting).
  void DisableStreaming();

  bool streaming() const { return streaming_; }
  std::size_t streaming_depth() const { return streaming_depth_; }

  /// Enqueues the full estimate chain of `box` on slot `slot` of every
  /// shard — bounds upload, contribution kernel, reduction, scalar
  /// read-back — without waiting. `FinishEstimateSlot(slot)` collects.
  /// No rebalance housekeeping and no EWMA observation: streaming passes
  /// overlap, so per-pass busy deltas are not attributable.
  void BeginEstimateSlot(const Box& box, std::size_t slot);

  /// Waits on slot `slot`'s per-shard read-back events, folds the
  /// partial sums and returns the estimate (also installed as
  /// `last_estimate()`). Requires a matching `BeginEstimateSlot`.
  double FinishEstimateSlot(std::size_t slot);

  /// Enqueues the gradient pass for the bounds resident in slot `slot`
  /// (the adaptive path calls this right after `BeginEstimateSlot`, so
  /// both chains pipeline). Collect with `CollectGradientSlot`.
  void EnqueueGradientSlot(std::size_t slot);

  /// Waits slot `slot`'s pending gradient and folds ∂p̂/∂h into
  /// `gradient` (arity dims()).
  void CollectGradientSlot(std::size_t slot, std::vector<double>* gradient);

  /// Points the feedback consumers at slot `slot`: `shard_contributions`
  /// returns that slot's retained contributions and `last_estimate()`
  /// returns `estimate` (the raw estimate recorded when the slot's query
  /// was delivered), so the Karma pass reads the state of the query the
  /// feedback belongs to — not whichever query streamed last.
  void SetFeedbackContext(std::size_t slot, double estimate);

  /// Per-point contributions p̂^(i)(Ω) of the last estimate on shard 0 —
  /// the whole sample for single-shard engines (for the Karma pass).
  /// Valid for shard-0's row count.
  const DeviceBuffer<double>& contributions() const {
    return shards_[0].slots[feedback_slot_].contributions;
  }
  DeviceBuffer<double>* mutable_contributions() {
    return &shards_[0].slots[feedback_slot_].contributions;
  }

  /// Per-point contributions retained on shard `shard` (local-row
  /// indexed, sample->shard_size(shard) live entries) — the feedback
  /// slot's buffer (slot 0 outside streaming).
  const DeviceBuffer<double>& shard_contributions(std::size_t shard) const {
    return shards_[shard].slots[feedback_slot_].contributions;
  }

  /// Kernel backend shard `shard` runs (resolved from its device profile
  /// at construction — AVX2 availability and the FKDE_KERNEL_BACKEND /
  /// FKDE_KERNEL_PRECISION overrides applied).
  KernelBackend shard_backend(std::size_t shard) const {
    return shards_[shard].backend;
  }
  KernelPrecision shard_precision(std::size_t shard) const {
    return shards_[shard].precision;
  }

  /// Model footprint: sample payload + bandwidth + retained contributions.
  /// Deliberately EXCLUDES transient evaluation scratch — the batched
  /// query descriptors, tile contribution/partial buffers and reduction
  /// scratch — because those are pooled per-device scratch acquired only
  /// while a batched evaluation runs and bounded by the query tile, not
  /// the model: the paper's d·4kB memory budget (Section 6.1.1) covers
  /// what the model must keep resident between queries.
  std::size_t ModelBytes() const;

 private:
  /// One in-flight query's device state on one shard: the bounds it
  /// queried, its retained contributions/partials and the read-back
  /// staging its enqueued chain writes into. Slot 0 always exists (the
  /// classic synchronous paths run on it); `EnableStreaming` grows the
  /// ring. Buffers are capacity-sized so shard growth under rebalancing
  /// never reallocates (enqueued commands capture raw device pointers).
  struct ShardSlot {
    DeviceBuffer<double> bounds_dev;     // 2d doubles: l_0..l_d-1,u_0..
    DeviceBuffer<double> contributions;  // capacity doubles.
    DeviceBuffer<double> grad_partials;  // d*capacity doubles, dim-major.
    DeviceBuffer<double> grad_sums;      // d reduced gradient sums.
    DeviceBuffer<double> est_sum;        // 1 reduced contribution sum.
    std::vector<double> grad_staging;    // d-double read-back staging.
    double est_staging = 0.0;            // 1-double read-back staging.
    Event est_done;                      // Estimate read-back handle.
    Event pending_gradient;              // Held until feedback arrives.
  };

  /// Per-shard device state shared by every slot.
  struct EngineShard {
    Device* device = nullptr;
    /// Resolved kernel backend/precision for this shard's fused loops.
    KernelBackend backend = KernelBackend::kScalar;
    KernelPrecision precision = KernelPrecision::kDouble;
    DeviceBuffer<double> bandwidth_dev;  // d doubles (replicated).
    DeviceBuffer<float> point_scales;    // capacity floats (variable KDE).
    std::vector<ShardSlot> slots;        // Ring of in-flight query state.
  };

  /// Allocates one slot's device buffers and staging on `sh.device`.
  void AllocateSlot(EngineShard& sh, ShardSlot* slot) const;

  /// Pre-pass housekeeping on multi-shard samples: applies any due
  /// rebalance and re-scatters the point scales if rows migrated. Must
  /// run before the first enqueue of a pass and never between
  /// `EnqueueGradient` and `CollectGradient`.
  void PrepareForPass();

  /// Snapshots per-shard `DeviceBusySeconds` into `out`.
  void SnapshotBusy(std::vector<double>* out) const;

  /// Feeds `busy_after - busy_before` into the sample's throughput EWMA.
  void ObservePass(const std::vector<double>& busy_before);

  /// Stages `box` bounds into `staging` (2d doubles).
  void StageBounds(const Box& box, double* staging) const;

  /// Builds the kernel-backend view of shard `shard` (raw device pointers
  /// plus resolved backend/precision) captured by the fused kernel
  /// bodies. For simd shards, call `sample_->EnsureSoaCurrent(shard)`
  /// before enqueuing a body that consumes the view.
  kb::ShardKernelView ShardView(std::size_t shard) const;

  /// Sample-only subset of ShardView for the Scott moments kernel: no
  /// bandwidth/scale pointers, because `kb::Moments` reads raw sample
  /// values only — and at moments time the bandwidth the moments will
  /// *derive* is not initialized yet, so packing its pointer would hand
  /// the kernel uninitialized memory (flagged by both fkde-lint's
  /// access-set check and the hazard checker's use-before-init).
  kb::ShardKernelView MomentsView(std::size_t shard) const;

  /// Enqueues the fused gradient-partials kernel on shard `shard` for the
  /// bounds currently resident in slot `slot`'s bounds_dev (shared by
  /// EstimateWithGradient, EnqueueGradient and EnqueueGradientSlot).
  void EnqueueGradientPartialsKernel(std::size_t shard, std::size_t slot);

  /// Queries per scratch tile for an m-query batch over `shard_rows`
  /// sample rows: bounded so the tile contribution/partial buffers stay
  /// within a fixed byte budget.
  std::size_t BatchTile(std::size_t queries, std::size_t shard_rows,
                        bool with_partials) const;

  /// Per-shard batched pipeline state: pooled scratch plus read-back
  /// staging, alive until the shard's events are waited on.
  struct BatchShard {
    ScratchBuffer bounds;    // m*(2d+1) descriptor doubles.
    ScratchBuffer contrib;   // tile*s_i contributions.
    ScratchBuffer partials;  // tile*d*s_i gradient partials.
    ScratchBuffer est;       // m per-query partial sums.
    ScratchBuffer grad;      // m*d per-query partial gradients.
    std::vector<double> est_staging;
    std::vector<double> grad_staging;
    Event done;
  };

  /// Shared core of the batched paths: enqueues, per shard, the
  /// descriptor upload (from `descriptors`, m*2d bounds doubles plus
  /// `truths_count` trailing truths) and the tiled contribution kernels
  /// (the fused contribution+partials kernel when `with_partials`) with
  /// their segmented estimate reductions; when `reduce_gradients` also
  /// reduces each tile's t*d partial segments into per-query gradients.
  /// `fold` (optional, single-shard loss path) runs after each tile with
  /// (tile_start, tile_size, shard state). When `enqueue_readbacks`, the
  /// per-query sums (and gradients) are read back into the staging
  /// vectors; the returned states hold the final events, NOT yet waited
  /// on.
  std::vector<BatchShard> EnqueueBatchPipelines(
      std::span<const Box> boxes, const std::vector<double>& descriptors,
      std::size_t truths_count, bool with_partials, bool reduce_gradients,
      const std::function<void(std::size_t, std::size_t, BatchShard&)>& fold,
      bool enqueue_readbacks);

  /// Stages all query bounds (lowers-then-uppers per query) with `truths`
  /// packed behind them — the per-shard upload image.
  std::vector<double> StageBatchDescriptors(
      std::span<const Box> boxes, std::span<const double> truths) const;

  /// Scatters `scales_host_` into each shard's local order and uploads
  /// (one metered transfer per non-empty shard); records the migration
  /// epoch the scatter reflects.
  void UploadScales();

  DeviceSample* sample_;
  KernelType kernel_;
  std::vector<double> bandwidth_;  // Host copy.
  std::vector<EngineShard> shards_;
  std::vector<double> scales_host_;  // Global-slot point scales.
  std::uint64_t scales_epoch_ = 0;   // Sample migration epoch at upload.
  /// Per-slot bounds staging for the enqueued uploads. Lives until the
  /// slot is reused — by then the ring guarantees the previous upload
  /// completed (its query was delivered before the slot came around).
  std::vector<std::vector<double>> bounds_staging_;
  bool gradient_pending_ = false;
  bool has_scales_ = false;
  bool streaming_ = false;
  std::size_t streaming_depth_ = 1;
  /// Slot whose contributions/estimate the feedback consumers (Karma)
  /// currently see; always 0 outside streaming.
  std::size_t feedback_slot_ = 0;
  double last_estimate_ = 0.0;

  static constexpr std::size_t kMaxDims = 32;
  /// Byte cap for one tile's contribution+partial scratch; bounds device
  /// memory for large m×s batches (tiles add O(1) launches each).
  static constexpr std::size_t kMaxBatchTileBytes = 64ull << 20;
};

}  // namespace fkde

#endif  // FKDE_KDE_ENGINE_H_
