/// \file engine.h
/// \brief Device-side KDE math: estimation, bandwidth gradient, Scott init.
///
/// `KdeEngine` is the computational core shared by every KDE estimator
/// variant (heuristic, SCV, batch-optimal, adaptive). It owns the
/// device-resident sample and bandwidth and implements, as device kernels:
///
///  * the range-selectivity estimate p̂_H(Ω) — eq. (2) with the per-point
///    closed form eq. (13), a parallel map over sample points followed by
///    the binary-tree reduction (paper Section 5.4, Figure 3 steps 1-4);
///  * the estimator gradient ∂p̂_H(Ω)/∂h_i — eq. (15)-(17), either
///    synchronously or ENQUEUED on the device's command queue so it runs
///    while the database executes the query (Section 5.5, steps 5-6:
///    `EnqueueGradient`/`CollectGradient`);
///  * Scott's rule — eq. (3), via parallel sum / sum-of-squares reductions
///    and the variance identity (Section 5.2).
///
/// Per-point contributions are retained on the device after each estimate
/// so the Karma maintenance pass can reuse them (Section 5.6, step 9).

#ifndef FKDE_KDE_ENGINE_H_
#define FKDE_KDE_ENGINE_H_

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "common/status.h"
#include "data/box.h"
#include "kde/kernels.h"
#include "kde/loss.h"
#include "kde/sample.h"
#include "parallel/device.h"

namespace fkde {

/// \brief KDE estimation engine over a device-resident sample.
class KdeEngine {
 public:
  /// Wraps an already-loaded sample. The engine keeps a pointer; the
  /// sample must outlive the engine. Bandwidth starts at Scott's rule.
  KdeEngine(DeviceSample* sample, KernelType kernel);

  /// Drains the device queue so no enqueued command outlives the engine's
  /// buffers (command_queue.h lifetime discipline).
  ~KdeEngine();

  std::size_t dims() const { return sample_->dims(); }
  std::size_t sample_size() const { return sample_->size(); }
  KernelType kernel() const { return kernel_; }
  DeviceSample* sample() { return sample_; }
  Device* device() const { return sample_->device(); }

  /// Current (diagonal) bandwidth, host copy.
  const std::vector<double>& bandwidth() const { return bandwidth_; }

  /// Sets the bandwidth; values must be positive and finite. The new
  /// bandwidth is transferred to the device (one metered 8d-byte
  /// transfer). Blocking, so the host-side copy in `bandwidth_` may be
  /// reused as the transfer staging without lifetime hazards; at 8d bytes
  /// the wait is a no-op on the modeled timeline.
  Status SetBandwidth(std::span<const double> bandwidth);

  /// Variable-KDE extension (paper Section 8): installs per-point
  /// bandwidth scale factors, so point i smooths with h_j * scale[i] in
  /// every dimension j (Terrell & Scott's adaptive kernel model). Scales
  /// must be positive and of arity sample_size(). One metered transfer.
  Status SetPointScales(std::span<const double> scales);

  /// Removes per-point scales (back to the fixed-bandwidth model).
  void ClearPointScales() { has_scales_ = false; }
  bool has_point_scales() const { return has_scales_; }

  /// Computes Scott's rule (eq. 3) from the device-resident sample via
  /// parallel reductions: h_i = s^(-1/(d+4)) * sigma_i.
  std::vector<double> ComputeScottBandwidth();

  /// Estimates the selectivity of `box` (eq. 2). Transfers the query
  /// bounds in, runs the contribution kernel and reduction, transfers the
  /// scalar estimate out. Per-point contributions stay on the device.
  double Estimate(const Box& box);

  /// Estimate plus the gradient ∂p̂/∂h_i (eq. 17), fully synchronous —
  /// the bandwidth-optimization path. `gradient->size()` becomes dims().
  /// For the adaptive feedback loop use `EnqueueGradient` instead, which
  /// hides the gradient work behind query execution.
  double EstimateWithGradient(const Box& box, std::vector<double>* gradient);

  /// Enqueues the Section 5.5 gradient pass (steps 5-6) for the box of
  /// the LAST `Estimate` call without blocking: the fused partials
  /// kernel, ONE segmented reduction over the d dim-major partial
  /// segments, and a d-double read-back. The device crunches while the
  /// database executes the query; `CollectGradient` waits on the returned
  /// event when the feedback arrives. Any previously pending gradient is
  /// discarded. Does not touch the retained contributions.
  Event EnqueueGradient();

  /// Waits for the pending `EnqueueGradient` pass and writes ∂p̂/∂h
  /// (arity dims()) into `gradient`. Requires `gradient_pending()`.
  void CollectGradient(std::vector<double>* gradient);

  /// True between `EnqueueGradient` and `CollectGradient`.
  bool gradient_pending() const { return gradient_pending_; }

  /// Batched estimation: uploads all `boxes.size()` query bounds in ONE
  /// transfer, runs one fused contribution kernel over the s × m grid
  /// (each work item owns a sample point and loops over a query tile),
  /// reduces all segments with `ReduceSumSegments`, and reads all
  /// estimates back in one transfer — O(1) launches in the query count
  /// instead of the ~m·log(s) launches of an Estimate loop. Bit-identical
  /// to per-query `Estimate` calls. `estimates.size()` must equal
  /// `boxes.size()`. Does not touch the retained single-query
  /// contributions or `last_estimate()`.
  void EstimateBatch(std::span<const Box> boxes, std::span<double> estimates);

  /// Batched estimate + per-query bandwidth gradients (eq. 17 via the
  /// same prefix/suffix-product scheme as `EstimateWithGradient`).
  /// `gradients` is query-major with arity boxes.size() * dims():
  /// gradients[q * dims() + k] = ∂p̂_q/∂h_k. Results are bit-identical to
  /// per-query `EstimateWithGradient` calls.
  void EstimateBatchWithGradient(std::span<const Box> boxes,
                                 std::span<double> estimates,
                                 std::span<double> gradients);

  /// Fused batched objective evaluation for bandwidth optimization
  /// (problem (5)): estimates all boxes, evaluates `loss` against
  /// `truths` on the device, and returns the MEAN loss over the batch.
  /// When `gradient` is non-null it receives the gradient of the mean
  /// loss w.r.t. the bandwidth (arity dims()): the per-query ∂L/∂p̂
  /// factors of eq. (14) are folded into a device-side reduction pass, so
  /// the whole evaluation costs O(1) launches, one descriptor upload
  /// (bounds + truths) and one (d+1)-double read-back — instead of the
  /// ~m·(d+2) launches and m·(d+1) read-backs of a per-query loop.
  double EstimateBatchLoss(std::span<const Box> boxes,
                           std::span<const double> truths, LossType loss,
                           double lambda, std::vector<double>* gradient);

  /// Selectivity of `box` at the last Estimate/EstimateWithGradient call.
  double last_estimate() const { return last_estimate_; }

  /// Per-point contributions p̂^(i)(Ω) of the last estimate, device
  /// resident (for the Karma pass). Valid for sample_size() entries.
  const DeviceBuffer<double>& contributions() const { return contributions_; }
  DeviceBuffer<double>* mutable_contributions() { return &contributions_; }

  /// Model footprint: sample payload + bandwidth + retained contributions.
  /// Deliberately EXCLUDES transient evaluation scratch — the batched
  /// query descriptors, tile contribution/partial buffers and reduction
  /// scratch (batch_*_ below) — because those exist only while a batched
  /// evaluation runs and are bounded by the query tile, not the model:
  /// the paper's d·4kB memory budget (Section 6.1.1) covers what the
  /// model must keep resident between queries.
  std::size_t ModelBytes() const;

 private:
  /// Uploads box bounds into bounds_ (2d doubles, one transfer).
  void UploadBounds(const Box& box);

  /// Uploads all `boxes` bounds — and, when `truths` is non-empty, the
  /// per-query true selectivities — into batch_bounds_ as ONE transfer.
  /// Layout: query q's bounds at [q*2d, q*2d+2d) (lowers then uppers),
  /// truths packed behind all bounds at [m*2d + q].
  void UploadBatchDescriptors(std::span<const Box> boxes,
                              std::span<const double> truths);

  /// Queries per scratch tile for an m-query batch: bounded so the tile
  /// contribution/partial buffers stay within a fixed byte budget.
  std::size_t BatchTile(std::size_t queries, bool with_partials) const;

  /// Shared core of the batched paths: fills batch_est_ with all m
  /// per-query contribution sums (NOT yet divided by s), tile by tile.
  /// When `fold` is non-null it is invoked after each tile's estimates
  /// are resident with (tile_start, tile_size) so loss/gradient passes
  /// can consume the tile's partials before they are overwritten.
  void BatchContributionSums(
      std::span<const Box> boxes, bool with_partials,
      const std::function<void(std::size_t, std::size_t)>& fold);

  /// Enqueues the fused gradient-partials kernel for the bounds currently
  /// resident in bounds_dev_ (shared by EstimateWithGradient and
  /// EnqueueGradient).
  void EnqueueGradientPartialsKernel();

  DeviceSample* sample_;
  KernelType kernel_;
  std::vector<double> bandwidth_;          // Host copy.
  DeviceBuffer<double> bandwidth_dev_;     // d doubles.
  DeviceBuffer<double> bounds_dev_;        // 2d doubles: l_0..l_d-1,u_0..
  DeviceBuffer<double> contributions_;     // s doubles.
  DeviceBuffer<double> grad_partials_;     // d*s doubles, dim-major.
  DeviceBuffer<double> grad_sums_;         // d reduced gradient sums.
  DeviceBuffer<float> point_scales_;       // s floats (variable KDE).
  std::vector<double> grad_staging_;       // d-double read-back staging.
  Event pending_gradient_;                 // Held until feedback arrives.
  bool gradient_pending_ = false;
  bool has_scales_ = false;
  double last_estimate_ = 0.0;

  // Batched-evaluation scratch (lazily grown, excluded from ModelBytes).
  DeviceBuffer<double> batch_bounds_;      // m*(2d+1) descriptor doubles.
  DeviceBuffer<double> batch_contrib_;     // tile*s contributions.
  DeviceBuffer<double> batch_partials_;    // tile*d*s gradient partials.
  DeviceBuffer<double> batch_est_;         // m per-query sums.
  DeviceBuffer<double> batch_fold_;        // (d+1)*groups fold partials.
  DeviceBuffer<double> batch_grad_;        // m*d per-query gradients.
  DeviceBuffer<double> batch_results_;     // d+1 folded scalars.

  static constexpr std::size_t kMaxDims = 32;
  /// Byte cap for one tile's contribution+partial scratch; bounds device
  /// memory for large m×s batches (tiles add O(1) launches each).
  static constexpr std::size_t kMaxBatchTileBytes = 64ull << 20;
};

}  // namespace fkde

#endif  // FKDE_KDE_ENGINE_H_
