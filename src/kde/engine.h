/// \file engine.h
/// \brief Device-side KDE math: estimation, bandwidth gradient, Scott init.
///
/// `KdeEngine` is the computational core shared by every KDE estimator
/// variant (heuristic, SCV, batch-optimal, adaptive). It owns the
/// device-resident sample and bandwidth and implements, as device kernels:
///
///  * the range-selectivity estimate p̂_H(Ω) — eq. (2) with the per-point
///    closed form eq. (13), a parallel map over sample points followed by
///    the binary-tree reduction (paper Section 5.4, Figure 3 steps 1-4);
///  * the estimator gradient ∂p̂_H(Ω)/∂h_i — eq. (15)-(17), optionally
///    modeled as overlapped with query execution (Section 5.5, steps 5-6);
///  * Scott's rule — eq. (3), via parallel sum / sum-of-squares reductions
///    and the variance identity (Section 5.2).
///
/// Per-point contributions are retained on the device after each estimate
/// so the Karma maintenance pass can reuse them (Section 5.6, step 9).

#ifndef FKDE_KDE_ENGINE_H_
#define FKDE_KDE_ENGINE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/status.h"
#include "data/box.h"
#include "kde/kernels.h"
#include "kde/sample.h"
#include "parallel/device.h"

namespace fkde {

/// \brief KDE estimation engine over a device-resident sample.
class KdeEngine {
 public:
  /// Wraps an already-loaded sample. The engine keeps a pointer; the
  /// sample must outlive the engine. Bandwidth starts at Scott's rule.
  KdeEngine(DeviceSample* sample, KernelType kernel);

  std::size_t dims() const { return sample_->dims(); }
  std::size_t sample_size() const { return sample_->size(); }
  KernelType kernel() const { return kernel_; }
  DeviceSample* sample() { return sample_; }
  Device* device() const { return sample_->device(); }

  /// Current (diagonal) bandwidth, host copy.
  const std::vector<double>& bandwidth() const { return bandwidth_; }

  /// Sets the bandwidth; values must be positive and finite. The new
  /// bandwidth is transferred to the device (a metered 8d-byte transfer).
  Status SetBandwidth(std::span<const double> bandwidth);

  /// Variable-KDE extension (paper Section 8): installs per-point
  /// bandwidth scale factors, so point i smooths with h_j * scale[i] in
  /// every dimension j (Terrell & Scott's adaptive kernel model). Scales
  /// must be positive and of arity sample_size(). One metered transfer.
  Status SetPointScales(std::span<const double> scales);

  /// Removes per-point scales (back to the fixed-bandwidth model).
  void ClearPointScales() { has_scales_ = false; }
  bool has_point_scales() const { return has_scales_; }

  /// Computes Scott's rule (eq. 3) from the device-resident sample via
  /// parallel reductions: h_i = s^(-1/(d+4)) * sigma_i.
  std::vector<double> ComputeScottBandwidth();

  /// Estimates the selectivity of `box` (eq. 2). Transfers the query
  /// bounds in, runs the contribution kernel and reduction, transfers the
  /// scalar estimate out. Per-point contributions stay on the device.
  double Estimate(const Box& box);

  /// Estimate plus the gradient ∂p̂/∂h_i (eq. 17). When `overlapped` is
  /// true the gradient kernels are modeled as hidden behind query
  /// execution (the adaptive path); the estimate kernels are always
  /// charged. `gradient->size()` becomes dims().
  double EstimateWithGradient(const Box& box, std::vector<double>* gradient,
                              bool overlapped = false);

  /// Selectivity of `box` at the last Estimate/EstimateWithGradient call.
  double last_estimate() const { return last_estimate_; }

  /// Per-point contributions p̂^(i)(Ω) of the last estimate, device
  /// resident (for the Karma pass). Valid for sample_size() entries.
  const DeviceBuffer<double>& contributions() const { return contributions_; }
  DeviceBuffer<double>* mutable_contributions() { return &contributions_; }

  /// Model footprint: sample payload + bandwidth + retained contributions.
  std::size_t ModelBytes() const;

 private:
  /// Uploads box bounds into bounds_ (2d doubles, one transfer).
  void UploadBounds(const Box& box);

  DeviceSample* sample_;
  KernelType kernel_;
  std::vector<double> bandwidth_;          // Host copy.
  DeviceBuffer<double> bandwidth_dev_;     // d doubles.
  DeviceBuffer<double> bounds_dev_;        // 2d doubles: l_0..l_d-1,u_0..
  DeviceBuffer<double> contributions_;     // s doubles.
  DeviceBuffer<double> grad_partials_;     // d*s doubles, dim-major.
  DeviceBuffer<float> point_scales_;       // s floats (variable KDE).
  bool has_scales_ = false;
  double last_estimate_ = 0.0;

  static constexpr std::size_t kMaxDims = 32;
};

}  // namespace fkde

#endif  // FKDE_KDE_ENGINE_H_
