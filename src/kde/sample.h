/// \file sample.h
/// \brief Device-resident data sample (paper Section 5.1/5.2), optionally
/// sharded across a `DeviceGroup`.
///
/// The sample is the memory-dominant part of a KDE model. Matching the
/// paper, it is stored *row-major in single precision* on the device: the
/// row-major layout lets sample maintenance replace one point with a
/// single PCI-Express transfer of d floats, which is the whole reason the
/// Karma scheme is transfer-efficient.
///
/// Loading the sample at ANALYZE time is the only bulk transfer the
/// estimator ever performs; everything afterwards is query bounds,
/// scalars, and replaced rows.
///
/// ## Sharding (Section 5.4 past one device's ceiling)
///
/// Constructed over a `DeviceGroup`, the sample splits into one shard per
/// device: shard i holds a contiguous run of rows resident on device i,
/// and the engine runs every hot path per-shard concurrently, folding the
/// partials on the host. Rows keep a stable *global slot* (what
/// `ReplaceRow`/Karma/reservoir address); a host-side slot map routes a
/// global slot to its current (shard, local-row) home.
///
/// The partition is self-tuning: initial shard sizes follow the group's
/// modeled-throughput weights, then `ObserveShardSeconds` feeds measured
/// per-shard completion times into an EWMA of per-shard throughput and
/// `MaybeRebalance` periodically migrates rows from slow to fast shards.
/// Migration moves rows over the bus through ordinary metered transfers
/// (donor read-back + receiver upload), so the `TransferLedger` story
/// stays honest. Each migration bumps `migration_epoch()`; consumers
/// caching per-slot device state (Karma bitmaps, point scales) must
/// refresh when the epoch moves.
///
/// ## SoA mirror (simd kernel backend)
///
/// The canonical storage stays row-major (AoS) — that is what keeps
/// maintenance a d-float transfer. Shards feeding a simd-backend device
/// additionally keep a device-resident structure-of-arrays mirror
/// (`soa[j * soa_stride() + i]`), opted into per shard via
/// `EnableSoaMirror`, so 8-wide lanes load contiguous per-dimension
/// strips. The mirror is maintained lazily: maintenance marks rows dirty
/// and `EnsureSoaCurrent` (engine-called before each pass enqueues on the
/// shard) repacks them with an ordinary metered kernel — a full
/// transpose (`sample_soa_pack`) after bulk loads or heavy churn, a
/// dirty-row scatter (`sample_soa_scatter`) after point replacements.

#ifndef FKDE_KDE_SAMPLE_H_
#define FKDE_KDE_SAMPLE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/table.h"
#include "parallel/device.h"
#include "parallel/device_group.h"

namespace fkde {

/// \brief Fixed-capacity sample of table rows resident on one device or
/// sharded across a device group.
class DeviceSample {
 public:
  /// Allocates an empty single-shard sample of `capacity` rows with
  /// `dims` attributes on `device`.
  DeviceSample(Device* device, std::size_t capacity, std::size_t dims);

  /// Allocates an empty sample sharded across `group` (one shard per
  /// device). Every shard is allocated at full capacity so rebalancing
  /// migrates rows without reallocating device memory.
  DeviceSample(DeviceGroup* group, std::size_t capacity, std::size_t dims);

  /// Draws a uniform random sample (without replacement) of up to
  /// `capacity()` rows from `table` and uploads it in one transfer per
  /// shard. Returns FailedPrecondition on an empty table.
  Status LoadFromTable(const Table& table, Rng* rng);

  /// Uploads explicit rows (row-major doubles, rows*dims values) in one
  /// transfer per shard; the sample size becomes `rows`.
  Status LoadRows(std::span<const double> rows_data, std::size_t rows);

  /// Uploads explicit rows (row-major doubles in GLOBAL-SLOT order) into
  /// an EXPLICIT shard layout: `shard_slots[i]` lists, in local-row
  /// order, the global slots resident on shard i. Unlike `LoadRows`,
  /// which re-apportions rows by the group's initial weights, this
  /// reproduces a saved post-migration placement exactly — the snapshot
  /// warm-restart path. Every global slot in [0, rows) must appear
  /// exactly once across the shards.
  Status LoadShardLayout(
      std::span<const double> rows_data, std::size_t rows,
      const std::vector<std::vector<std::uint32_t>>& shard_slots);

  /// Per-shard global-slot residency, local-row ordered — the layout
  /// `LoadShardLayout` consumes (snapshot serialization).
  std::vector<std::vector<std::uint32_t>> ShardSlots() const;

  /// Restores the throughput EWMAs and the rebalance pass counter saved
  /// from another sample (snapshot warm restart), so the self-tuning
  /// partitioner resumes the saved trajectory. `rates` arity must match
  /// the shard count.
  Status RestoreRates(std::span<const double> rates,
                      std::size_t observed_passes);

  /// Replaces the row at global slot `slot` with `row` using a single
  /// d-float transfer to whichever shard currently hosts the slot (the
  /// Karma/reservoir replacement path).
  void ReplaceRow(std::size_t slot, std::span<const double> row);

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t dims() const { return dims_; }
  bool empty() const { return size_ == 0; }

  /// Primary device (shard 0). Single-shard callers see the pre-sharding
  /// behavior unchanged.
  Device* device() const { return shards_[0].device; }

  /// Owning group; nullptr for a single-device sample.
  DeviceGroup* group() const { return group_; }

  std::size_t num_shards() const { return shards_.size(); }
  Device* shard_device(std::size_t shard) const {
    return shards_[shard].device;
  }
  std::size_t shard_size(std::size_t shard) const {
    return shards_[shard].size;
  }
  /// Device storage of one shard (shard_size * dims live floats,
  /// row-major). For kernel functors.
  const DeviceBuffer<float>& shard_buffer(std::size_t shard) const {
    return shards_[shard].buffer;
  }

  /// Shard-0 storage — the whole sample for single-shard callers.
  const DeviceBuffer<float>& buffer() const { return shards_[0].buffer; }

  /// Allocates the dim-major SoA mirror for `shard` (capacity * dims
  /// floats) and marks it fully dirty. Idempotent. Called by the engine
  /// for shards whose device profile selects the simd kernel backend.
  void EnableSoaMirror(std::size_t shard);

  bool soa_enabled(std::size_t shard) const {
    return !shards_[shard].soa.empty();
  }

  /// Dim-major mirror of one shard (`soa[j * soa_stride() + i]` for local
  /// row i). Valid only after `EnableSoaMirror`; strips are current only
  /// after `EnsureSoaCurrent`.
  const DeviceBuffer<float>& shard_soa(std::size_t shard) const {
    return shards_[shard].soa;
  }

  /// Strip pitch of every SoA mirror. Full capacity, so rebalancing never
  /// restructures strips — migrated rows land as dirty tail entries.
  std::size_t soa_stride() const { return capacity_; }

  /// Repacks the shard's dirty rows into its SoA mirror with a metered
  /// kernel launch (no-op when the mirror is absent or clean). Engine-
  /// called before enqueuing simd-backend work on the shard.
  void EnsureSoaCurrent(std::size_t shard);

  /// Global slot currently held by local row `local` of `shard`.
  std::size_t GlobalSlot(std::size_t shard, std::size_t local) const {
    return shards_[shard].global_ids[local];
  }

  /// Current (shard, local row) home of global slot `slot`.
  std::pair<std::size_t, std::size_t> LocateSlot(std::size_t slot) const {
    return {slot_map_[slot].first, slot_map_[slot].second};
  }

  /// Reads one sample row back to the host (a metered transfer). Intended
  /// for tests and diagnostics, not the hot path.
  std::vector<double> ReadRow(std::size_t slot);

  /// Reads the whole sample back in global-slot order (one metered
  /// transfer per shard). Construction-time consumers only (SCV bandwidth
  /// selection, variable-KDE pilot) — never the per-query path.
  std::vector<double> GatherRows();

  /// Feeds one estimate pass's measured per-shard busy-seconds into the
  /// per-shard throughput EWMAs (entries <= 0 or empty shards are
  /// skipped). Called by the engine after every folded pass.
  void ObserveShardSeconds(std::span<const double> busy_seconds);

  /// Rebalances shard sizes toward the measured-throughput proportions if
  /// enough passes were observed and the deviation exceeds the trigger.
  /// Returns true when rows migrated (and `migration_epoch` advanced).
  /// Engine-called between queries, never while work is enqueued on the
  /// shards being resized.
  bool MaybeRebalance();

  /// Bumped once per migrating rebalance. Consumers caching per-slot
  /// device state refresh when this moves.
  std::uint64_t migration_epoch() const { return migration_epoch_; }

  /// Total rows moved across devices by rebalancing.
  std::uint64_t rows_migrated() const { return rows_migrated_; }

  std::vector<std::size_t> shard_sizes() const;

  /// Measured per-shard throughput EWMAs, rows/busy-second (0 until the
  /// first observation).
  std::vector<double> shard_rates() const;

  /// Estimate passes whose shard timings have been observed so far — the
  /// rebalance counter `RestoreRates` re-installs on warm restart.
  std::size_t observed_passes() const { return observed_passes_; }

  /// Model bytes consumed by the sample payload.
  std::size_t PayloadBytes() const { return size_ * dims_ * sizeof(float); }

 private:
  struct Shard {
    Device* device = nullptr;
    DeviceBuffer<float> buffer;
    std::size_t size = 0;
    /// local row -> global slot.
    std::vector<std::uint32_t> global_ids;
    /// Throughput EWMA, rows/busy-second; 0 = unmeasured.
    double rate_ewma = 0.0;
    /// Dim-major SoA mirror (capacity * dims floats); empty unless
    /// `EnableSoaMirror` opted this shard in.
    DeviceBuffer<float> soa;
    /// Mirror staleness: full rebuild pending, or individual dirty local
    /// rows (ignored while soa_full_dirty is set).
    bool soa_full_dirty = false;
    std::vector<std::uint32_t> soa_dirty_rows;
  };

  /// Marks local rows [first, first + count) of `shard` stale in its SoA
  /// mirror (no-op when the mirror is absent). Escalates to a full
  /// rebuild when the dirty list outgrows a quarter of the shard.
  void MarkSoaDirty(std::size_t shard, std::size_t first, std::size_t count);

  /// Splits `rows` into per-shard targets proportional to `weights`
  /// (largest-remainder rounding, then a min_shard_rows floor).
  std::vector<std::size_t> Apportion(std::size_t rows,
                                     const std::vector<double>& weights) const;

  /// Uploads staged floats split by `targets` and rebuilds the slot map.
  void UploadPartitioned(const std::vector<float>& staging, std::size_t rows);

  /// Moves the last `count` rows of shard `from` to the end of shard `to`
  /// through metered transfers, updating the slot map.
  void MigrateRows(std::size_t from, std::size_t to, std::size_t count);

  DeviceGroup* group_ = nullptr;
  std::size_t capacity_;
  std::size_t dims_;
  std::size_t size_ = 0;
  std::vector<Shard> shards_;
  /// global slot -> (shard, local row).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> slot_map_;
  std::uint64_t migration_epoch_ = 0;
  std::uint64_t rows_migrated_ = 0;
  std::size_t observed_passes_ = 0;
};

}  // namespace fkde

#endif  // FKDE_KDE_SAMPLE_H_
