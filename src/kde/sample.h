/// \file sample.h
/// \brief Device-resident data sample (paper Section 5.1/5.2).
///
/// The sample is the memory-dominant part of a KDE model. Matching the
/// paper, it is stored *row-major in single precision* on the device: the
/// row-major layout lets sample maintenance replace one point with a
/// single PCI-Express transfer of d floats, which is the whole reason the
/// Karma scheme is transfer-efficient.
///
/// Loading the sample at ANALYZE time is the only bulk transfer the
/// estimator ever performs; everything afterwards is query bounds,
/// scalars, and replaced rows.

#ifndef FKDE_KDE_SAMPLE_H_
#define FKDE_KDE_SAMPLE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/table.h"
#include "parallel/device.h"

namespace fkde {

/// \brief Fixed-capacity sample of table rows resident on a device.
class DeviceSample {
 public:
  /// Allocates an empty sample of `capacity` rows with `dims` attributes
  /// on `device`.
  DeviceSample(Device* device, std::size_t capacity, std::size_t dims);

  /// Draws a uniform random sample (without replacement) of up to
  /// `capacity()` rows from `table` and uploads it in one transfer.
  /// Returns FailedPrecondition on an empty table.
  Status LoadFromTable(const Table& table, Rng* rng);

  /// Uploads explicit rows (row-major doubles, rows*dims values) in one
  /// transfer; the sample size becomes `rows`.
  Status LoadRows(std::span<const double> rows_data, std::size_t rows);

  /// Replaces the row at `slot` with `row` using a single d-float
  /// transfer (the Karma/reservoir replacement path).
  void ReplaceRow(std::size_t slot, std::span<const double> row);

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t dims() const { return dims_; }
  bool empty() const { return size_ == 0; }

  Device* device() const { return device_; }

  /// Device storage (size * dims floats, row-major). For kernel functors.
  const DeviceBuffer<float>& buffer() const { return buffer_; }

  /// Reads one sample row back to the host (a metered transfer). Intended
  /// for tests and diagnostics, not the hot path.
  std::vector<double> ReadRow(std::size_t slot);

  /// Model bytes consumed by the sample payload.
  std::size_t PayloadBytes() const { return size_ * dims_ * sizeof(float); }

 private:
  Device* device_;
  std::size_t capacity_;
  std::size_t dims_;
  std::size_t size_ = 0;
  DeviceBuffer<float> buffer_;
};

}  // namespace fkde

#endif  // FKDE_KDE_SAMPLE_H_
