#include "kde/snapshot.h"

#include <bit>
#include <cstring>
#include <utility>

namespace fkde {
namespace {

/// FNV-1a 64-bit over a byte range — the blob's integrity check.
std::uint64_t Fnv1a64(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Little-endian byte writer over a growing vector.
class Writer {
 public:
  void U8(std::uint8_t v) { out_.push_back(v); }
  void U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(std::uint8_t(v >> (8 * i)));
  }
  void U64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(std::uint8_t(v >> (8 * i)));
  }
  void F64(double v) { U64(std::bit_cast<std::uint64_t>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Doubles(std::span<const double> v) {
    U64(v.size());
    for (double x : v) F64(x);
  }
  void Sizes(std::span<const std::size_t> v) {
    U64(v.size());
    for (std::size_t x : v) U64(x);
  }

  /// Appends the checksum of everything written so far and releases the
  /// finished blob.
  std::vector<std::uint8_t> Finish() {
    U64(Fnv1a64(out_.data(), out_.size()));
    return std::move(out_);
  }

 private:
  std::vector<std::uint8_t> out_;
};

/// Little-endian byte reader; every accessor fails soft by latching
/// `ok()` false, so call sites chain reads and check once.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t U8() {
    if (!Need(1)) return 0;
    return bytes_[pos_++];
  }
  std::uint32_t U32() {
    if (!Need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(bytes_[pos_++]) << (8 * i);
    return v;
  }
  std::uint64_t U64() {
    if (!Need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(bytes_[pos_++]) << (8 * i);
    return v;
  }
  double F64() { return std::bit_cast<double>(U64()); }
  bool Bool() { return U8() != 0; }
  std::vector<double> Doubles() {
    const std::uint64_t n = U64();
    if (!Need(n * 8)) return {};
    std::vector<double> v(n);
    for (auto& x : v) x = F64();
    return v;
  }
  std::vector<std::size_t> Sizes() {
    const std::uint64_t n = U64();
    if (!Need(n * 8)) return {};
    std::vector<std::size_t> v(n);
    for (auto& x : v) x = static_cast<std::size_t>(U64());
    return v;
  }

  bool ok() const { return ok_; }
  std::size_t pos() const { return pos_; }

 private:
  bool Need(std::uint64_t n) {
    if (!ok_ || n > bytes_.size() - pos_) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

void WriteConfig(Writer* w, const KdeConfig& c) {
  w->U64(c.sample_size);
  w->U32(static_cast<std::uint32_t>(c.kernel));
  w->U32(static_cast<std::uint32_t>(c.loss));
  w->F64(c.lambda);
  w->U64(c.seed);
  // Adaptive (Listing 1) knobs.
  w->U64(c.adaptive.mini_batch);
  w->F64(c.adaptive.alpha);
  w->F64(c.adaptive.lr_min);
  w->F64(c.adaptive.lr_max);
  w->F64(c.adaptive.lr_increase);
  w->F64(c.adaptive.lr_decrease);
  w->F64(c.adaptive.lr_initial);
  w->Bool(c.adaptive.log_updates);
  // Karma knobs.
  w->F64(c.karma.k_max);
  w->F64(c.karma.threshold);
  w->U32(static_cast<std::uint32_t>(c.karma.loss));
  w->F64(c.karma.lambda);
  w->Bool(c.karma.empty_region_shortcut);
  // Batch-optimizer knobs (the periodic variant re-optimizes with them
  // after restore, so they are state, not just construction input).
  w->U32(static_cast<std::uint32_t>(c.batch.loss));
  w->F64(c.batch.lambda);
  w->Bool(c.batch.log_space);
  w->F64(c.batch.min_factor);
  w->F64(c.batch.max_factor);
  w->U64(c.batch.local.max_iterations);
  w->U64(c.batch.local.history);
  w->F64(c.batch.local.gradient_tolerance);
  w->F64(c.batch.local.f_tolerance);
  w->U64(c.batch.local.max_line_search_steps);
  w->U64(c.batch.global.num_samples);
  w->U64(c.batch.global.num_rounds);
  w->U64(c.batch.global.starts_per_round);
  w->F64(c.batch.global.link_radius_fraction);
  // SCV knobs (construction-time only; kept for config fidelity).
  w->F64(c.scv.min_factor);
  w->F64(c.scv.max_factor);
  w->U64(c.scv.max_iterations);
  w->U64(c.scv.restarts);
  w->U64(c.scv.max_rows);
  w->U64(c.scv.seed);
  w->Bool(c.enable_karma);
  w->Bool(c.enable_reservoir);
  w->U64(c.feedback_window);
  w->U64(c.reoptimize_every);
}

KdeConfig ReadConfig(Reader* r) {
  KdeConfig c;
  c.sample_size = static_cast<std::size_t>(r->U64());
  c.kernel = static_cast<KernelType>(r->U32());
  c.loss = static_cast<LossType>(r->U32());
  c.lambda = r->F64();
  c.seed = r->U64();
  c.adaptive.mini_batch = static_cast<std::size_t>(r->U64());
  c.adaptive.alpha = r->F64();
  c.adaptive.lr_min = r->F64();
  c.adaptive.lr_max = r->F64();
  c.adaptive.lr_increase = r->F64();
  c.adaptive.lr_decrease = r->F64();
  c.adaptive.lr_initial = r->F64();
  c.adaptive.log_updates = r->Bool();
  c.karma.k_max = r->F64();
  c.karma.threshold = r->F64();
  c.karma.loss = static_cast<LossType>(r->U32());
  c.karma.lambda = r->F64();
  c.karma.empty_region_shortcut = r->Bool();
  c.batch.loss = static_cast<LossType>(r->U32());
  c.batch.lambda = r->F64();
  c.batch.log_space = r->Bool();
  c.batch.min_factor = r->F64();
  c.batch.max_factor = r->F64();
  c.batch.local.max_iterations = static_cast<std::size_t>(r->U64());
  c.batch.local.history = static_cast<std::size_t>(r->U64());
  c.batch.local.gradient_tolerance = r->F64();
  c.batch.local.f_tolerance = r->F64();
  c.batch.local.max_line_search_steps = static_cast<std::size_t>(r->U64());
  c.batch.global.num_samples = static_cast<std::size_t>(r->U64());
  c.batch.global.num_rounds = static_cast<std::size_t>(r->U64());
  c.batch.global.starts_per_round = static_cast<std::size_t>(r->U64());
  c.batch.global.link_radius_fraction = r->F64();
  c.scv.min_factor = r->F64();
  c.scv.max_factor = r->F64();
  c.scv.max_iterations = static_cast<std::size_t>(r->U64());
  c.scv.restarts = static_cast<std::size_t>(r->U64());
  c.scv.max_rows = static_cast<std::size_t>(r->U64());
  c.scv.seed = r->U64();
  c.enable_karma = r->Bool();
  c.enable_reservoir = r->Bool();
  c.feedback_window = static_cast<std::size_t>(r->U64());
  c.reoptimize_every = static_cast<std::size_t>(r->U64());
  return c;
}

void WriteBox(Writer* w, const Box& box) {
  w->Doubles(box.lower_bounds());
  w->Doubles(box.upper_bounds());
}

Box ReadBox(Reader* r) {
  std::vector<double> lower = r->Doubles();
  std::vector<double> upper = r->Doubles();
  if (!r->ok() || lower.size() != upper.size()) return Box();
  for (std::size_t i = 0; i < lower.size(); ++i) {
    if (!(lower[i] <= upper[i])) return Box();
  }
  return Box(std::move(lower), std::move(upper));
}

}  // namespace

/// Friend of KdeSelectivityEstimator: reads/writes the private model
/// state and rebuilds estimators outside the Create path.
class ModelSnapshotAccess {
 public:
  static Result<std::vector<std::uint8_t>> Snapshot(
      KdeSelectivityEstimator* m) {
    // Fold in-flight device passes into host state; behavior-neutral (see
    // Quiesce's contract), so the original may keep serving afterwards.
    m->Quiesce();

    DeviceSample* sample = m->sample_.get();
    KdeEngine* engine = m->engine_.get();
    const std::size_t rows = sample->size();
    const std::size_t dims = sample->dims();

    Writer w;
    w.U32(kModelSnapshotMagic);
    w.U32(kModelSnapshotVersion);
    w.U32(static_cast<std::uint32_t>(m->mode_));
    w.U32(static_cast<std::uint32_t>(dims));
    w.U64(sample->capacity());
    w.U64(rows);
    w.U32(static_cast<std::uint32_t>(sample->num_shards()));
    WriteConfig(&w, m->config_);

    const RngState rng = m->rng_.SaveState();
    for (std::uint64_t s : rng.state) w.U64(s);
    w.Bool(rng.has_spare);
    w.F64(rng.spare);

    // Sample payload in global-slot order. The device stores floats; the
    // widening to double here and the narrowing on restore are exact.
    w.Doubles(sample->GatherRows());
    // Per-shard placement, so a rebalanced layout restores verbatim.
    const auto shard_slots = sample->ShardSlots();
    for (const auto& slots : shard_slots) {
      w.U64(slots.size());
      for (std::uint32_t id : slots) w.U32(id);
    }
    w.Doubles(sample->shard_rates());
    w.U64(sample->observed_passes());

    w.Doubles(engine->bandwidth());
    w.Bool(engine->has_point_scales());
    if (engine->has_point_scales()) w.Doubles(engine->point_scales_host());

    w.Bool(m->adaptive_.has_value());
    if (m->adaptive_.has_value()) {
      const AdaptiveBandwidthState st = m->adaptive_->SaveState();
      w.Doubles(st.grad_accum);
      w.U64(st.batch_count);
      w.Doubles(st.magnitude_avg);
      w.Doubles(st.rates);
      w.Doubles(st.prev_grad);
      w.Bool(st.has_prev_grad);
      w.U64(st.updates_applied);
    }

    w.Bool(m->karma_.has_value());
    if (m->karma_.has_value()) w.Doubles(m->karma_->ReadKarma());
    w.Sizes(m->pending_karma_slots_);

    w.Bool(m->reservoir_.has_value());
    if (m->reservoir_.has_value()) {
      w.U64(m->reservoir_->accepted());
      w.U64(m->reservoir_->observed());
    }

    w.U64(m->feedback_ring_.size());
    for (const Query& q : m->feedback_ring_) {
      WriteBox(&w, q.box);
      w.F64(q.selectivity);
    }
    w.U64(m->ring_next_);
    w.U64(m->feedback_since_optimize_);
    w.U64(m->reoptimizations_);
    w.U64(m->karma_replacements_);

    w.F64(m->batch_report_.initial_error);
    w.F64(m->batch_report_.final_error);
    w.U64(m->batch_report_.evaluations);
    w.Bool(m->batch_report_.converged);

    return w.Finish();
  }

  static Result<std::unique_ptr<KdeSelectivityEstimator>> Restore(
      std::span<const std::uint8_t> bytes, Device* device, DeviceGroup* group,
      const Table* table) {
    if (table == nullptr) {
      return Status::InvalidArgument("restore requires the base table");
    }
    if ((device == nullptr) == (group == nullptr)) {
      return Status::InvalidArgument(
          "restore requires exactly one of device or group");
    }
    if (bytes.size() < 8) {
      return Status::InvalidArgument("snapshot blob truncated");
    }
    // Verify integrity before trusting any field.
    const std::size_t body = bytes.size() - 8;
    std::uint64_t stored = 0;
    for (int i = 0; i < 8; ++i) {
      stored |= std::uint64_t(bytes[body + i]) << (8 * i);
    }
    if (Fnv1a64(bytes.data(), body) != stored) {
      return Status::InvalidArgument("snapshot checksum mismatch");
    }

    FKDE_ASSIGN_OR_RETURN(const ModelSnapshotHeader header,
                          ReadModelSnapshotHeader(bytes));
    Reader r(bytes.subspan(0, body));
    r.U32();  // magic (validated above)
    r.U32();  // version
    r.U32();  // mode
    r.U32();  // dims
    r.U64();  // capacity
    r.U64();  // rows
    r.U32();  // shards
    if (table->num_cols() != header.dims) {
      return Status::InvalidArgument("table dims do not match the snapshot");
    }
    const std::size_t shards = group != nullptr ? group->size() : 1;
    if (shards != header.shards) {
      return Status::FailedPrecondition(
          "snapshot shard layout does not match the target topology");
    }
    if (header.rows == 0 || header.rows > header.capacity) {
      return Status::InvalidArgument("snapshot row counts are inconsistent");
    }

    const KdeConfig config = ReadConfig(&r);

    RngState rng;
    for (std::uint64_t& s : rng.state) s = r.U64();
    rng.has_spare = r.Bool();
    rng.spare = r.F64();

    const std::vector<double> rows_data = r.Doubles();
    if (rows_data.size() != header.rows * header.dims) {
      return Status::InvalidArgument("snapshot sample payload truncated");
    }
    std::vector<std::vector<std::uint32_t>> shard_slots(header.shards);
    for (auto& slots : shard_slots) {
      const std::uint64_t count = r.U64();
      if (!r.ok() || count > header.rows) {
        return Status::InvalidArgument("snapshot shard layout truncated");
      }
      slots.resize(count);
      for (auto& id : slots) id = r.U32();
    }
    const std::vector<double> rates = r.Doubles();
    const std::size_t observed_passes = static_cast<std::size_t>(r.U64());

    const std::vector<double> bandwidth = r.Doubles();
    const bool has_scales = r.Bool();
    const std::vector<double> scales = has_scales ? r.Doubles()
                                                  : std::vector<double>();

    const bool has_adaptive = r.Bool();
    AdaptiveBandwidthState adaptive_state;
    if (has_adaptive) {
      adaptive_state.grad_accum = r.Doubles();
      adaptive_state.batch_count = static_cast<std::size_t>(r.U64());
      adaptive_state.magnitude_avg = r.Doubles();
      adaptive_state.rates = r.Doubles();
      adaptive_state.prev_grad = r.Doubles();
      adaptive_state.has_prev_grad = r.Bool();
      adaptive_state.updates_applied = static_cast<std::size_t>(r.U64());
    }

    const bool has_karma = r.Bool();
    const std::vector<double> karma_scores =
        has_karma ? r.Doubles() : std::vector<double>();
    const std::vector<std::size_t> pending_karma = r.Sizes();

    const bool has_reservoir = r.Bool();
    std::uint64_t accepted = 0, observed = 0;
    if (has_reservoir) {
      accepted = r.U64();
      observed = r.U64();
    }

    const std::uint64_t ring_count = r.U64();
    if (!r.ok() || ring_count > (body - r.pos()) / 8) {
      return Status::InvalidArgument("snapshot feedback ring truncated");
    }
    std::vector<Query> ring(static_cast<std::size_t>(ring_count));
    for (Query& q : ring) {
      q.box = ReadBox(&r);
      q.selectivity = r.F64();
      if (r.ok() && q.box.dims() != header.dims) {
        return Status::InvalidArgument("snapshot ring box dims mismatch");
      }
    }
    const std::size_t ring_next = static_cast<std::size_t>(r.U64());
    const std::size_t since_optimize = static_cast<std::size_t>(r.U64());
    const std::size_t reoptimizations = static_cast<std::size_t>(r.U64());
    const std::size_t karma_replacements = static_cast<std::size_t>(r.U64());

    BatchReport report;
    report.initial_error = r.F64();
    report.final_error = r.F64();
    report.evaluations = static_cast<std::size_t>(r.U64());
    report.converged = r.Bool();

    if (!r.ok()) {
      return Status::InvalidArgument("snapshot blob truncated");
    }

    // Rebuild. The Create path's mode-specific construction (SCV/batch
    // optimization, Scott tuning) must NOT re-run: the saved state IS the
    // post-construction, post-adaptation model.
    std::unique_ptr<KdeSelectivityEstimator> est(
        new KdeSelectivityEstimator(header.mode, table, config));
    est->sample_ = group != nullptr
                       ? std::make_unique<DeviceSample>(
                             group, static_cast<std::size_t>(header.capacity),
                             header.dims)
                       : std::make_unique<DeviceSample>(
                             device, static_cast<std::size_t>(header.capacity),
                             header.dims);
    FKDE_RETURN_NOT_OK(est->sample_->LoadShardLayout(
        rows_data, static_cast<std::size_t>(header.rows), shard_slots));
    // The engine constructor runs a Scott pass (feeding the rebalancer's
    // EWMA on multi-shard samples), so the saved rates install after it.
    est->engine_ =
        std::make_unique<KdeEngine>(est->sample_.get(), config.kernel);
    FKDE_RETURN_NOT_OK(est->sample_->RestoreRates(rates, observed_passes));
    FKDE_RETURN_NOT_OK(est->engine_->SetBandwidth(bandwidth));
    if (has_scales) {
      FKDE_RETURN_NOT_OK(est->engine_->SetPointScales(scales));
    }
    est->rng_.RestoreState(rng);
    if (has_adaptive) {
      est->adaptive_.emplace(header.dims, config.adaptive);
      FKDE_RETURN_NOT_OK(est->adaptive_->RestoreState(adaptive_state));
    }
    if (has_karma) {
      est->karma_.emplace(est->engine_.get(), config.karma);
      FKDE_RETURN_NOT_OK(est->karma_->RestoreKarma(karma_scores));
    }
    for (std::size_t slot : pending_karma) {
      if (slot >= est->sample_->size()) {
        return Status::InvalidArgument("snapshot pending slot out of range");
      }
    }
    est->pending_karma_slots_ = pending_karma;
    if (has_reservoir) {
      est->reservoir_.emplace(est->sample_.get(), &est->rng_);
      est->reservoir_->RestoreCounters(static_cast<std::size_t>(accepted),
                                       static_cast<std::size_t>(observed));
    }
    est->feedback_ring_ = std::move(ring);
    est->ring_next_ = ring_next;
    est->feedback_since_optimize_ = since_optimize;
    est->reoptimizations_ = reoptimizations;
    est->karma_replacements_ = karma_replacements;
    est->batch_report_ = report;
    return est;
  }
};

Result<ModelSnapshotHeader> ReadModelSnapshotHeader(
    std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  const std::uint32_t magic = r.U32();
  ModelSnapshotHeader header;
  header.version = r.U32();
  const std::uint32_t mode = r.U32();
  header.dims = r.U32();
  header.capacity = r.U64();
  header.rows = r.U64();
  header.shards = r.U32();
  if (!r.ok()) {
    return Status::InvalidArgument("snapshot header truncated");
  }
  if (magic != kModelSnapshotMagic) {
    return Status::InvalidArgument("not a model snapshot (bad magic)");
  }
  if (header.version != kModelSnapshotVersion) {
    return Status::InvalidArgument(
        "unsupported snapshot version " + std::to_string(header.version) +
        " (expected " + std::to_string(kModelSnapshotVersion) + ")");
  }
  if (mode > static_cast<std::uint32_t>(
                 KdeSelectivityEstimator::Mode::kAdaptive)) {
    return Status::InvalidArgument("snapshot mode out of range");
  }
  header.mode = static_cast<KdeSelectivityEstimator::Mode>(mode);
  if (header.dims == 0 || header.shards == 0) {
    return Status::InvalidArgument("snapshot header fields out of range");
  }
  return header;
}

Result<std::vector<std::uint8_t>> SnapshotModel(
    KdeSelectivityEstimator* model) {
  if (model == nullptr) {
    return Status::InvalidArgument("model must be non-null");
  }
  return ModelSnapshotAccess::Snapshot(model);
}

Result<std::unique_ptr<KdeSelectivityEstimator>> RestoreModel(
    std::span<const std::uint8_t> bytes, Device* device, const Table* table) {
  if (device == nullptr) {
    return Status::InvalidArgument("device must be non-null");
  }
  return ModelSnapshotAccess::Restore(bytes, device, nullptr, table);
}

Result<std::unique_ptr<KdeSelectivityEstimator>> RestoreModel(
    std::span<const std::uint8_t> bytes, DeviceGroup* group,
    const Table* table) {
  if (group == nullptr) {
    return Status::InvalidArgument("group must be non-null");
  }
  return ModelSnapshotAccess::Restore(bytes, nullptr, group, table);
}

}  // namespace fkde
