/// \file karma.h
/// \brief Karma-based sample maintenance (paper Section 4.2, Appendix E).
///
/// Database updates slowly invalidate the device-resident sample. Classic
/// sample-maintenance algorithms would stream correction data over the
/// bus; the Karma scheme instead piggybacks on the query feedback already
/// sent for bandwidth adaptation:
///
///  * the leave-one-out estimate (6) tells how the estimator would have
///    done without point i, using the retained per-point contributions;
///  * the per-query Karma (7) is the loss change the point caused;
///  * cumulative Karma (8) is clamped at K_max (saturation, default 4) so
///    formerly-good points can be demoted quickly;
///  * points whose cumulative Karma sinks below a threshold are marked
///    outdated and replaced by fresh tuples sampled from the database;
///  * the Appendix E shortcut instantly replaces points that *provably*
///    lie inside an empty query region, by bounding the maximum
///    contribution a point outside the region can make (eqs. 19/20).
///
/// The device produces a replacement bitmap; the host samples fresh rows
/// and writes each back with a single d-float transfer.
///
/// The maintenance pass is asynchronous: `EnqueueUpdate` submits the
/// Karma kernel and the s/8-byte bitmap read-back on the device queue and
/// returns immediately — the pass runs "while the database processes the
/// next statement" (Section 5.6). The caller collects the replacement
/// slots with `CollectPending` when it next has feedback in hand, so
/// replacements land one query late, exactly as in the paper's pipeline.
///
/// Over a sharded sample the pass runs per shard, concurrently, against
/// each shard's retained contributions, and `CollectPending` maps the
/// local bitmap hits back to global slots. Karma scores are local-row
/// indexed, so a shard migration invalidates them: the maintainer
/// snapshots the sample's `migration_epoch()` and, when it moves,
/// discards the stale pass's results and re-zeroes the scores (rebalances
/// are rare, so losing accumulated Karma is an accepted cost — the
/// alternative would be migrating the scores alongside every row).

#ifndef FKDE_KDE_KARMA_H_
#define FKDE_KDE_KARMA_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "data/box.h"
#include "kde/engine.h"
#include "kde/loss.h"

namespace fkde {

/// \brief Karma parameters (paper defaults).
struct KarmaOptions {
  double k_max = 4.0;        ///< Saturation bound of cumulative Karma.
  double threshold = -1.0;   ///< Replace points whose Karma sinks below.
  /// Loss whose change defines the Karma score. Defaults to the squared
  /// Q-error: its O(1)-O(10) per-query magnitudes are what make the
  /// paper's constants (K_max = 4, a small negative threshold) meaningful;
  /// an absolute L2 on selectivities would produce O(1e-5) Karma values
  /// that never reach any fixed threshold.
  LossType loss = LossType::kSquaredQ;
  double lambda = 1e-5;
  /// Enable the Appendix E empty-region shortcut (Gaussian kernel only;
  /// the bound (20) is derived from the Gaussian CDF).
  bool empty_region_shortcut = true;
};

/// \brief Tracks cumulative Karma of each sample slot on the device.
class KarmaMaintainer {
 public:
  /// Tracks the engine's sample. The engine must outlive the maintainer.
  KarmaMaintainer(KdeEngine* engine, const KarmaOptions& options);

  /// Drains the device queue so a pending update never outlives the
  /// Karma/bitmap buffers (command_queue.h lifetime discipline).
  ~KarmaMaintainer();

  /// Enqueues the Karma scoring pass for the last estimate's retained
  /// contributions (engine->contributions()) and the true selectivity of
  /// the same query box, without blocking: one kernel over the bitmap
  /// words plus the s/8-byte bitmap read-back. Must be called after
  /// `engine->Estimate*(box)` for the same box and BEFORE the next
  /// estimate overwrites the contributions (the in-order queue then keeps
  /// the pass reading the right values). A previous update must have been
  /// collected first.
  void EnqueueUpdate(const Box& box, double true_selectivity);

  /// Waits for the pending `EnqueueUpdate` pass and returns the sample
  /// slots that must be replaced (Karma below threshold, or inside a
  /// provably empty region). Requires `update_pending()`.
  std::vector<std::size_t> CollectPending();

  /// True between `EnqueueUpdate` and `CollectPending`.
  bool update_pending() const { return update_pending_; }

  /// Synchronous convenience wrapper: EnqueueUpdate + CollectPending.
  std::vector<std::size_t> Update(const Box& box, double true_selectivity);

  /// Resets the Karma of a slot that was just replaced with a fresh row.
  void ResetSlot(std::size_t slot);

  /// Reads back the full Karma vector (metered; tests/diagnostics).
  std::vector<double> ReadKarma();

  /// Installs saved cumulative Karma scores, global-slot indexed as
  /// produced by `ReadKarma` (snapshot warm restart; one transfer per
  /// non-empty shard). Requires no pending update and an arity equal to
  /// the sample size.
  Status RestoreKarma(std::span<const double> karma_by_slot);

  const KarmaOptions& options() const { return options_; }

  /// Appendix E: the minimum contribution that proves a point lies inside
  /// `box` (right-hand side of condition (20)), given the bandwidth.
  /// Exposed for tests.
  static double InsideContributionBound(const Box& box,
                                        const std::vector<double>& bandwidth);

 private:
  /// Per-shard maintenance state, local-row indexed, capacity-sized so
  /// migration growth never reallocates under a pending pass.
  struct KarmaShard {
    DeviceBuffer<double> karma;        // One score per local row.
    DeviceBuffer<std::uint32_t> flags;  // Replacement bitmap, 32 rows/word.
    std::vector<std::uint32_t> host_flags;  // Bitmap read-back staging.
    Event pending;                     // Held until the next feedback.
  };

  /// Re-zeroes every shard's Karma (one transfer per shard) and records
  /// the current migration epoch.
  void ResetAllKarma();

  KdeEngine* engine_;
  KarmaOptions options_;
  std::vector<KarmaShard> shards_;
  /// Sample migration epoch the scores (and any pending pass) refer to.
  std::uint64_t epoch_ = 0;
  bool update_pending_ = false;
};

}  // namespace fkde

#endif  // FKDE_KDE_KARMA_H_
