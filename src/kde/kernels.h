/// \file kernels.h
/// \brief Kernel functions and their closed-form range integrals.
///
/// The estimator only ever needs two per-dimension quantities (paper
/// Appendix B/C):
///
///  * the *CDF difference* — the probability mass a kernel centered at
///    sample value t with bandwidth h places on the interval [l, u]
///    (one factor of eq. 13), and
///  * its *partial derivative with respect to h* (one factor of eq. 17).
///
/// Because both supported kernels are product kernels, the d-dimensional
/// contribution of a sample point is the product of these per-dimension
/// factors, and the bandwidth gradient follows from the product rule.
///
/// The paper mainly derives the Gaussian; we also provide the Epanechnikov
/// kernel it mentions as the cheaper alternative (Appendix A).

#ifndef FKDE_KDE_KERNELS_H_
#define FKDE_KDE_KERNELS_H_

#include <cmath>
#include <string>

#include "common/status.h"

namespace fkde {

/// Shape of the local probability distributions (paper Section 3.1.2).
enum class KernelType {
  kGaussian,      ///< Standard normal kernel; smooth, infinite support.
  kEpanechnikov,  ///< Truncated quadratic; compact support, cheap.
};

/// Parses "gaussian"/"epanechnikov" (case-insensitive).
Result<KernelType> ParseKernelName(const std::string& name);
const char* KernelName(KernelType type);

namespace kernel {

constexpr double kInvSqrt2 = 0.7071067811865476;
constexpr double kInvSqrt2Pi = 0.3989422804014327;

/// Gaussian factor of eq. (13): probability mass that a 1D Gaussian kernel
/// centered at `t` with bandwidth `h` places on [l, u]:
///   0.5 * (erf((u-t)/(sqrt(2) h)) - erf((l-t)/(sqrt(2) h))).
inline double GaussianCdfDiff(double t, double h, double l, double u) {
  const double inv = kInvSqrt2 / h;
  return 0.5 * (std::erf((u - t) * inv) - std::erf((l - t) * inv));
}

/// d/dh of GaussianCdfDiff (one factor of eq. 17):
///   (1 / (sqrt(2 pi) h^2)) *
///     ((l-t) exp(-(l-t)^2 / 2h^2) - (u-t) exp(-(u-t)^2 / 2h^2)).
inline double GaussianCdfDiffDh(double t, double h, double l, double u) {
  const double inv_h2 = 1.0 / (h * h);
  const double dl = l - t;
  const double du = u - t;
  return kInvSqrt2Pi * inv_h2 *
         (dl * std::exp(-0.5 * dl * dl * inv_h2) -
          du * std::exp(-0.5 * du * du * inv_h2));
}

/// CDF of the standard Epanechnikov kernel K(z) = 0.75 (1 - z^2) on
/// [-1, 1]: F(z) = 0.25 (2 + 3z - z^3), clamped outside the support.
inline double EpanechnikovCdf(double z) {
  if (z <= -1.0) return 0.0;
  if (z >= 1.0) return 1.0;
  return 0.25 * (2.0 + 3.0 * z - z * z * z);
}

/// Epanechnikov analogue of GaussianCdfDiff.
inline double EpanechnikovCdfDiff(double t, double h, double l, double u) {
  const double inv = 1.0 / h;
  return EpanechnikovCdf((u - t) * inv) - EpanechnikovCdf((l - t) * inv);
}

/// d/dh of EpanechnikovCdfDiff. With z = (x - t)/h,
/// d/dh F(z) = -z/h * K(z), so the difference is
/// (z_l K(z_l) - z_u K(z_u)) / h (zero outside the support).
inline double EpanechnikovCdfDiffDh(double t, double h, double l, double u) {
  const double inv = 1.0 / h;
  const double zl = (l - t) * inv;
  const double zu = (u - t) * inv;
  auto density = [](double z) {
    return (z <= -1.0 || z >= 1.0) ? 0.0 : 0.75 * (1.0 - z * z);
  };
  return (zl * density(zl) - zu * density(zu)) * inv;
}

/// Dispatching wrappers (branch predicted perfectly inside kernels since
/// the type is loop-invariant).
inline double CdfDiff(KernelType type, double t, double h, double l,
                      double u) {
  return type == KernelType::kGaussian ? GaussianCdfDiff(t, h, l, u)
                                       : EpanechnikovCdfDiff(t, h, l, u);
}

inline double CdfDiffDh(KernelType type, double t, double h, double l,
                        double u) {
  return type == KernelType::kGaussian ? GaussianCdfDiffDh(t, h, l, u)
                                       : EpanechnikovCdfDiffDh(t, h, l, u);
}

}  // namespace kernel
}  // namespace fkde

#endif  // FKDE_KDE_KERNELS_H_
