/// \file kernels.h
/// \brief Kernel functions and their closed-form range integrals.
///
/// The estimator only ever needs two per-dimension quantities (paper
/// Appendix B/C):
///
///  * the *CDF difference* — the probability mass a kernel centered at
///    sample value t with bandwidth h places on the interval [l, u]
///    (one factor of eq. 13), and
///  * its *partial derivative with respect to h* (one factor of eq. 17).
///
/// Because both supported kernels are product kernels, the d-dimensional
/// contribution of a sample point is the product of these per-dimension
/// factors, and the bandwidth gradient follows from the product rule.
///
/// The paper mainly derives the Gaussian; we also provide the Epanechnikov
/// kernel it mentions as the cheaper alternative (Appendix A).

#ifndef FKDE_KDE_KERNELS_H_
#define FKDE_KDE_KERNELS_H_

#include <cmath>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace fkde {

/// Shape of the local probability distributions (paper Section 3.1.2).
enum class KernelType {
  kGaussian,      ///< Standard normal kernel; smooth, infinite support.
  kEpanechnikov,  ///< Truncated quadratic; compact support, cheap.
};

/// Parses "gaussian"/"epanechnikov" (case-insensitive).
Result<KernelType> ParseKernelName(const std::string& name);
const char* KernelName(KernelType type);

namespace kernel {

constexpr double kInvSqrt2 = 0.7071067811865476;
constexpr double kInvSqrt2Pi = 0.3989422804014327;

/// Gaussian factor of eq. (13): probability mass that a 1D Gaussian kernel
/// centered at `t` with bandwidth `h` places on [l, u]:
///   0.5 * (erf((u-t)/(sqrt(2) h)) - erf((l-t)/(sqrt(2) h))).
inline double GaussianCdfDiff(double t, double h, double l, double u) {
  const double inv = kInvSqrt2 / h;
  return 0.5 * (std::erf((u - t) * inv) - std::erf((l - t) * inv));
}

/// d/dh of GaussianCdfDiff (one factor of eq. 17):
///   (1 / (sqrt(2 pi) h^2)) *
///     ((l-t) exp(-(l-t)^2 / 2h^2) - (u-t) exp(-(u-t)^2 / 2h^2)).
inline double GaussianCdfDiffDh(double t, double h, double l, double u) {
  const double inv_h2 = 1.0 / (h * h);
  const double dl = l - t;
  const double du = u - t;
  return kInvSqrt2Pi * inv_h2 *
         (dl * std::exp(-0.5 * dl * dl * inv_h2) -
          du * std::exp(-0.5 * du * du * inv_h2));
}

/// CDF of the standard Epanechnikov kernel K(z) = 0.75 (1 - z^2) on
/// [-1, 1]: F(z) = 0.25 (2 + 3z - z^3), clamped outside the support.
inline double EpanechnikovCdf(double z) {
  if (z <= -1.0) return 0.0;
  if (z >= 1.0) return 1.0;
  return 0.25 * (2.0 + 3.0 * z - z * z * z);
}

/// Epanechnikov analogue of GaussianCdfDiff.
inline double EpanechnikovCdfDiff(double t, double h, double l, double u) {
  const double inv = 1.0 / h;
  return EpanechnikovCdf((u - t) * inv) - EpanechnikovCdf((l - t) * inv);
}

/// d/dh of EpanechnikovCdfDiff. With z = (x - t)/h,
/// d/dh F(z) = -z/h * K(z), so the difference is
/// (z_l K(z_l) - z_u K(z_u)) / h (zero outside the support).
inline double EpanechnikovCdfDiffDh(double t, double h, double l, double u) {
  const double inv = 1.0 / h;
  const double zl = (l - t) * inv;
  const double zu = (u - t) * inv;
  auto density = [](double z) {
    return (z <= -1.0 || z >= 1.0) ? 0.0 : 0.75 * (1.0 - z * z);
  };
  return (zl * density(zl) - zu * density(zu)) * inv;
}

/// Dispatching wrappers (branch predicted perfectly inside kernels since
/// the type is loop-invariant).
inline double CdfDiff(KernelType type, double t, double h, double l,
                      double u) {
  return type == KernelType::kGaussian ? GaussianCdfDiff(t, h, l, u)
                                       : EpanechnikovCdfDiff(t, h, l, u);
}

inline double CdfDiffDh(KernelType type, double t, double h, double l,
                        double u) {
  return type == KernelType::kGaussian ? GaussianCdfDiffDh(t, h, l, u)
                                       : EpanechnikovCdfDiffDh(t, h, l, u);
}

// ---------------------------------------------------------------------------
// Hoisted-factor variants.
//
// Every CdfDiff above recomputes a per-(query, dim) reciprocal —
// `kInvSqrt2 / h`, `1/h`, or `1/h²` — for every sample point, even though
// it is loop-invariant across the point loop. These variants take the
// reciprocal precomputed by `HoistFactors` once per query descriptor. The
// hoisted reciprocal is computed by the *identical* expression, so the
// per-point math (and therefore the result) is bitwise-identical to the
// unhoisted functions; kernels_test pins this.

/// The loop-invariant reciprocals of one (kernel, bandwidth) pair:
/// `inv_cdf` feeds CdfDiffHoisted, `inv_dh` feeds CdfDiffDhHoisted.
struct HoistedFactors {
  double inv_cdf;
  double inv_dh;
};

inline HoistedFactors HoistFactors(KernelType type, double h) {
  if (type == KernelType::kGaussian) {
    return HoistedFactors{kInvSqrt2 / h, 1.0 / (h * h)};
  }
  const double inv = 1.0 / h;
  return HoistedFactors{inv, inv};
}

inline double GaussianCdfDiffHoisted(double t, double inv, double l,
                                     double u) {
  return 0.5 * (std::erf((u - t) * inv) - std::erf((l - t) * inv));
}

inline double GaussianCdfDiffDhHoisted(double t, double inv_h2, double l,
                                       double u) {
  const double dl = l - t;
  const double du = u - t;
  return kInvSqrt2Pi * inv_h2 *
         (dl * std::exp(-0.5 * dl * dl * inv_h2) -
          du * std::exp(-0.5 * du * du * inv_h2));
}

inline double EpanechnikovCdfDiffHoisted(double t, double inv, double l,
                                         double u) {
  return EpanechnikovCdf((u - t) * inv) - EpanechnikovCdf((l - t) * inv);
}

inline double EpanechnikovCdfDiffDhHoisted(double t, double inv, double l,
                                           double u) {
  const double zl = (l - t) * inv;
  const double zu = (u - t) * inv;
  auto density = [](double z) {
    return (z <= -1.0 || z >= 1.0) ? 0.0 : 0.75 * (1.0 - z * z);
  };
  return (zl * density(zl) - zu * density(zu)) * inv;
}

inline double CdfDiffHoisted(KernelType type, double t, double inv, double l,
                             double u) {
  return type == KernelType::kGaussian
             ? GaussianCdfDiffHoisted(t, inv, l, u)
             : EpanechnikovCdfDiffHoisted(t, inv, l, u);
}

inline double CdfDiffDhHoisted(KernelType type, double t, double inv_dh,
                               double l, double u) {
  return type == KernelType::kGaussian
             ? GaussianCdfDiffDhHoisted(t, inv_dh, l, u)
             : EpanechnikovCdfDiffDhHoisted(t, inv_dh, l, u);
}

// ---------------------------------------------------------------------------
// Float-precision approximations (the mixed-precision kernel backend's
// lane math — see parallel/simd.h and kde/kernel_backend.h).
//
// The SIMD float path cannot call libm per lane, so it uses polynomial
// approximations with proven bounds; these scalar mirrors compute the
// SAME formulas and serve as the remainder-lane tail of the vector
// kernels and as the reference for the pinned error-bound tests.

/// Cephes-style single-precision exp: x = n·ln2 + r with |r| ≤ ln2/2,
/// e^r by a degree-6 minimax polynomial, scale by 2^n through the
/// exponent bits. Relative error ≤ 2^-21 (~5e-7) over the clamped domain
/// [-87.3, 88.7]; inputs below/above clamp to the boundary value.
inline float ExpApproxF(float x) {
  constexpr float kLog2E = 1.44269504088896341f;
  constexpr float kC1 = 0.693359375f;        // ln2 split: high part,
  constexpr float kC2 = -2.12194440e-4f;     // low part (Cody-Waite).
  x = x > 88.7f ? 88.7f : (x < -87.3f ? -87.3f : x);
  const float n = std::floor(kLog2E * x + 0.5f);
  float r = x - n * kC1;
  r -= n * kC2;
  const float r2 = r * r;
  float p = 1.9875691500e-4f;
  p = p * r + 1.3981999507e-3f;
  p = p * r + 8.3334519073e-3f;
  p = p * r + 4.1665795894e-2f;
  p = p * r + 1.6666665459e-1f;
  p = p * r + 5.0000001201e-1f;
  const float y = p * r2 + r + 1.0f;
  // 2^n via exponent-bit assembly (n is integral and within [-127, 127]
  // after the clamp above).
  union {
    std::uint32_t bits;
    float value;
  } scale;
  scale.bits =
      static_cast<std::uint32_t>(static_cast<int>(n) + 127) << 23;
  return y * scale.value;
}

/// Abramowitz & Stegun 7.1.26 single-precision erf: with
/// s = 1/(1 + p·|x|), erf(|x|) ≈ 1 − (a1·s + … + a5·s⁵)·e^(−x²), extended
/// oddly to x < 0. The rational bound is ≤ 1.5e-7 absolute in exact
/// arithmetic; with float rounding and ExpApproxF's error the total
/// absolute error is ≤ 1e-6 (pinned by kernel_backend_test over a dense
/// sweep).
inline float ErfApproxF(float x) {
  constexpr float kP = 0.3275911f;
  constexpr float kA1 = 0.254829592f;
  constexpr float kA2 = -0.284496736f;
  constexpr float kA3 = 1.421413741f;
  constexpr float kA4 = -1.453152027f;
  constexpr float kA5 = 1.061405429f;
  const float ax = x < 0.0f ? -x : x;
  const float s = 1.0f / (1.0f + kP * ax);
  float poly = kA5;
  poly = poly * s + kA4;
  poly = poly * s + kA3;
  poly = poly * s + kA2;
  poly = poly * s + kA1;
  const float y = 1.0f - poly * s * ExpApproxF(-ax * ax);
  return x < 0.0f ? -y : y;
}

/// Float GaussianCdfDiff over the hoisted reciprocal `inv` = kInvSqrt2/h.
/// Absolute error ≤ 1e-6 per factor (half the sum of two ErfApproxF
/// errors, plus rounding).
inline float GaussianCdfDiffF(float t, float inv, float l, float u) {
  return 0.5f * (ErfApproxF((u - t) * inv) - ErfApproxF((l - t) * inv));
}

/// Float GaussianCdfDiffDh over the hoisted `inv_h2` = 1/h². The leading
/// 1/h² factor means the error is relative to the gradient's own scale;
/// the backend tests pin an atol+rtol form.
inline float GaussianCdfDiffDhF(float t, float inv_h2, float l, float u) {
  constexpr float kInvSqrt2PiF = 0.3989422804014327f;
  const float dl = l - t;
  const float du = u - t;
  return kInvSqrt2PiF * inv_h2 *
         (dl * ExpApproxF(-0.5f * dl * dl * inv_h2) -
          du * ExpApproxF(-0.5f * du * du * inv_h2));
}

inline float EpanechnikovCdfF(float z) {
  if (z <= -1.0f) return 0.0f;
  if (z >= 1.0f) return 1.0f;
  return 0.25f * (2.0f + 3.0f * z - z * z * z);
}

/// Float EpanechnikovCdfDiff over the hoisted `inv` = 1/h. Pure
/// polynomial: error is float rounding only (≤ a few ulp).
inline float EpanechnikovCdfDiffF(float t, float inv, float l, float u) {
  return EpanechnikovCdfF((u - t) * inv) - EpanechnikovCdfF((l - t) * inv);
}

inline float EpanechnikovCdfDiffDhF(float t, float inv, float l, float u) {
  const float zl = (l - t) * inv;
  const float zu = (u - t) * inv;
  auto density = [](float z) {
    return (z <= -1.0f || z >= 1.0f) ? 0.0f : 0.75f * (1.0f - z * z);
  };
  return (zl * density(zl) - zu * density(zu)) * inv;
}

inline float CdfDiffHoistedF(KernelType type, float t, float inv, float l,
                             float u) {
  return type == KernelType::kGaussian ? GaussianCdfDiffF(t, inv, l, u)
                                       : EpanechnikovCdfDiffF(t, inv, l, u);
}

inline float CdfDiffDhHoistedF(KernelType type, float t, float inv_dh,
                               float l, float u) {
  return type == KernelType::kGaussian
             ? GaussianCdfDiffDhF(t, inv_dh, l, u)
             : EpanechnikovCdfDiffDhF(t, inv_dh, l, u);
}

}  // namespace kernel
}  // namespace fkde

#endif  // FKDE_KDE_KERNELS_H_
