#include "kde/sample.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <utility>

namespace fkde {

DeviceSample::DeviceSample(Device* device, std::size_t capacity,
                           std::size_t dims)
    : capacity_(capacity), dims_(dims) {
  FKDE_CHECK(device != nullptr);
  FKDE_CHECK(capacity > 0 && dims > 0);
  Shard shard;
  shard.device = device;
  shard.buffer = device->CreateBuffer<float>(capacity * dims);
  shards_.push_back(std::move(shard));
}

DeviceSample::DeviceSample(DeviceGroup* group, std::size_t capacity,
                           std::size_t dims)
    : group_(group), capacity_(capacity), dims_(dims) {
  FKDE_CHECK(group != nullptr);
  FKDE_CHECK(capacity > 0 && dims > 0);
  shards_.reserve(group->size());
  for (std::size_t i = 0; i < group->size(); ++i) {
    Shard shard;
    shard.device = group->device(i);
    // Full capacity per shard: rebalancing migrates rows without ever
    // reallocating device memory.
    shard.buffer = shard.device->CreateBuffer<float>(capacity * dims);
    shards_.push_back(std::move(shard));
  }
}

std::vector<std::size_t> DeviceSample::Apportion(
    std::size_t rows, const std::vector<double>& weights) const {
  const std::size_t n = shards_.size();
  FKDE_CHECK(weights.size() == n);
  double total_weight = 0.0;
  for (double w : weights) total_weight += w;
  FKDE_CHECK_MSG(total_weight > 0.0, "shard weights must be positive");

  // Largest-remainder apportionment: floors first, then hand the
  // leftover rows to the largest fractional parts.
  std::vector<std::size_t> sizes(n, 0);
  std::vector<std::pair<double, std::size_t>> remainders(n);
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double exact =
        static_cast<double>(rows) * weights[i] / total_weight;
    sizes[i] = static_cast<std::size_t>(exact);
    remainders[i] = {exact - static_cast<double>(sizes[i]), i};
    assigned += sizes[i];
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t k = 0; assigned < rows; ++k, ++assigned) {
    sizes[remainders[k % n].second] += 1;
  }

  // Keep every shard warm enough to measure: raise undersized shards to
  // the floor, taking rows from the largest shard.
  const std::size_t floor_rows =
      group_ ? std::min(group_->options().min_shard_rows, rows / n)
             : std::size_t{0};
  for (std::size_t i = 0; i < n; ++i) {
    while (sizes[i] < floor_rows) {
      const std::size_t largest = static_cast<std::size_t>(
          std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
      if (sizes[largest] <= floor_rows) break;
      sizes[largest] -= 1;
      sizes[i] += 1;
    }
  }
  return sizes;
}

void DeviceSample::UploadPartitioned(const std::vector<float>& staging,
                                     std::size_t rows) {
  const std::vector<double> weights =
      group_ ? group_->InitialWeights() : std::vector<double>{1.0};
  const std::vector<std::size_t> sizes = Apportion(rows, weights);
  slot_map_.assign(rows, {0, 0});
  std::size_t next_row = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = shards_[i];
    shard.size = sizes[i];
    shard.global_ids.resize(shard.size);
    for (std::size_t local = 0; local < shard.size; ++local) {
      const std::size_t global = next_row + local;
      shard.global_ids[local] = static_cast<std::uint32_t>(global);
      slot_map_[global] = {static_cast<std::uint32_t>(i),
                           static_cast<std::uint32_t>(local)};
    }
    // Transfers auto-declare their device-side access-sets (see
    // command_queue.h), so the sample's upload/gather/migration traffic
    // is hazard-checked without explicit declarations here.
    shard.device->CopyToDevice(staging.data() + next_row * dims_,
                               shard.size * dims_, &shard.buffer);
    next_row += shard.size;
    // A bulk upload invalidates the whole SoA mirror.
    shard.soa_full_dirty = !shard.soa.empty();
    shard.soa_dirty_rows.clear();
  }
  size_ = rows;
}

Status DeviceSample::LoadFromTable(const Table& table, Rng* rng) {
  if (table.empty()) {
    return Status::FailedPrecondition("cannot sample an empty table");
  }
  if (table.num_cols() != dims_) {
    return Status::InvalidArgument("table dims do not match sample dims");
  }
  const std::vector<std::size_t> rows =
      table.SampleWithoutReplacement(capacity_, rng);
  // Stage on the host (with double->float conversion, mirroring the
  // paper's type transformation during ANALYZE), then one bulk transfer
  // per shard.
  std::vector<float> staging(rows.size() * dims_);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto row = table.Row(rows[i]);
    for (std::size_t j = 0; j < dims_; ++j) {
      staging[i * dims_ + j] = static_cast<float>(row[j]);
    }
  }
  UploadPartitioned(staging, rows.size());
  return Status::OK();
}

Status DeviceSample::LoadRows(std::span<const double> rows_data,
                              std::size_t rows) {
  if (rows_data.size() != rows * dims_) {
    return Status::InvalidArgument("row data size mismatch");
  }
  if (rows > capacity_) {
    return Status::InvalidArgument("more rows than sample capacity");
  }
  std::vector<float> staging(rows_data.size());
  for (std::size_t i = 0; i < rows_data.size(); ++i) {
    staging[i] = static_cast<float>(rows_data[i]);
  }
  UploadPartitioned(staging, rows);
  return Status::OK();
}

Status DeviceSample::LoadShardLayout(
    std::span<const double> rows_data, std::size_t rows,
    const std::vector<std::vector<std::uint32_t>>& shard_slots) {
  if (rows_data.size() != rows * dims_) {
    return Status::InvalidArgument("row data size mismatch");
  }
  if (rows > capacity_) {
    return Status::InvalidArgument("more rows than sample capacity");
  }
  if (shard_slots.size() != shards_.size()) {
    return Status::InvalidArgument(
        "shard layout arity does not match the shard count");
  }
  std::vector<bool> seen(rows, false);
  std::size_t total = 0;
  for (const auto& slots : shard_slots) {
    total += slots.size();
    for (std::uint32_t slot : slots) {
      if (slot >= rows || seen[slot]) {
        return Status::InvalidArgument(
            "shard layout must cover every global slot exactly once");
      }
      seen[slot] = true;
    }
  }
  if (total != rows) {
    return Status::InvalidArgument("shard layout row count mismatch");
  }

  slot_map_.assign(rows, {0, 0});
  std::vector<float> staging;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = shards_[i];
    shard.size = shard_slots[i].size();
    shard.global_ids.assign(shard_slots[i].begin(), shard_slots[i].end());
    staging.resize(shard.size * dims_);
    for (std::size_t local = 0; local < shard.size; ++local) {
      const std::size_t global = shard.global_ids[local];
      slot_map_[global] = {static_cast<std::uint32_t>(i),
                           static_cast<std::uint32_t>(local)};
      for (std::size_t j = 0; j < dims_; ++j) {
        staging[local * dims_ + j] =
            static_cast<float>(rows_data[global * dims_ + j]);
      }
    }
    if (shard.size > 0) {
      shard.device->CopyToDevice(staging.data(), shard.size * dims_,
                                 &shard.buffer);
    }
    shard.soa_full_dirty = !shard.soa.empty();
    shard.soa_dirty_rows.clear();
  }
  size_ = rows;
  return Status::OK();
}

std::vector<std::vector<std::uint32_t>> DeviceSample::ShardSlots() const {
  std::vector<std::vector<std::uint32_t>> slots;
  slots.reserve(shards_.size());
  for (const Shard& shard : shards_) slots.push_back(shard.global_ids);
  return slots;
}

Status DeviceSample::RestoreRates(std::span<const double> rates,
                                  std::size_t observed_passes) {
  if (rates.size() != shards_.size()) {
    return Status::InvalidArgument("rate arity does not match shard count");
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i].rate_ewma = rates[i];
  }
  observed_passes_ = observed_passes;
  return Status::OK();
}

void DeviceSample::ReplaceRow(std::size_t slot, std::span<const double> row) {
  FKDE_CHECK(slot < size_);
  FKDE_CHECK(row.size() == dims_);
  float staging[64];
  FKDE_CHECK_MSG(dims_ <= 64, "dims beyond the stack staging buffer");
  for (std::size_t j = 0; j < dims_; ++j) {
    staging[j] = static_cast<float>(row[j]);
  }
  const auto [shard, local] = slot_map_[slot];
  shards_[shard].device->CopyToDevice(staging, dims_, &shards_[shard].buffer,
                                      local * dims_);
  MarkSoaDirty(shard, local, 1);
}

void DeviceSample::EnableSoaMirror(std::size_t shard) {
  Shard& sh = shards_[shard];
  if (!sh.soa.empty()) return;
  sh.soa = sh.device->CreateBuffer<float>(capacity_ * dims_);
  sh.soa_full_dirty = true;
  sh.soa_dirty_rows.clear();
}

void DeviceSample::MarkSoaDirty(std::size_t shard, std::size_t first,
                                std::size_t count) {
  Shard& sh = shards_[shard];
  if (sh.soa.empty() || sh.soa_full_dirty || count == 0) return;
  if (sh.soa_dirty_rows.size() + count > sh.size / 4) {
    // Past a quarter of the shard the full transpose streams better than
    // a scatter (and keeps the dirty list bounded).
    sh.soa_full_dirty = true;
    sh.soa_dirty_rows.clear();
    return;
  }
  for (std::size_t k = 0; k < count; ++k) {
    sh.soa_dirty_rows.push_back(static_cast<std::uint32_t>(first + k));
  }
}

void DeviceSample::EnsureSoaCurrent(std::size_t shard) {
  Shard& sh = shards_[shard];
  if (sh.soa.empty()) return;
  if (!sh.soa_full_dirty && sh.soa_dirty_rows.empty()) return;
  const std::size_t rows = sh.size;
  if (rows == 0) {
    sh.soa_full_dirty = false;
    sh.soa_dirty_rows.clear();
    return;
  }
  const std::size_t d = dims_;
  const std::size_t stride = capacity_;
  const float* aos = sh.buffer.device_data();
  float* soa = sh.soa.device_data();
  if (sh.soa_full_dirty) {
    const BufferAccess acc[] = {Reads(sh.buffer, 0, rows * d),
                                Writes(sh.soa)};
    sh.device->default_queue()->EnqueueLaunch(
        "sample_soa_pack", rows, static_cast<double>(d),
        [aos, soa, d, stride](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            for (std::size_t j = 0; j < d; ++j) {
              soa[j * stride + i] = aos[i * d + j];
            }
          }
        },
        acc);
  } else {
    const auto dirty = std::make_shared<std::vector<std::uint32_t>>(
        std::move(sh.soa_dirty_rows));
    const BufferAccess acc[] = {Reads(sh.buffer, 0, rows * d),
                                Writes(sh.soa)};
    sh.device->default_queue()->EnqueueLaunch(
        "sample_soa_scatter", dirty->size(), static_cast<double>(d),
        [aos, soa, d, stride, dirty](std::size_t begin, std::size_t end) {
          for (std::size_t k = begin; k < end; ++k) {
            const std::size_t i = (*dirty)[k];
            for (std::size_t j = 0; j < d; ++j) {
              soa[j * stride + i] = aos[i * d + j];
            }
          }
        },
        acc);
  }
  sh.soa_full_dirty = false;
  sh.soa_dirty_rows.clear();
}

std::vector<double> DeviceSample::ReadRow(std::size_t slot) {
  FKDE_CHECK(slot < size_);
  const auto [shard, local] = slot_map_[slot];
  std::vector<float> staging(dims_);
  shards_[shard].device->CopyToHost(shards_[shard].buffer, local * dims_,
                                    dims_, staging.data());
  return std::vector<double>(staging.begin(), staging.end());
}

std::vector<double> DeviceSample::GatherRows() {
  std::vector<double> rows(size_ * dims_);
  std::vector<float> staging;
  for (const Shard& shard : shards_) {
    if (shard.size == 0) continue;
    staging.resize(shard.size * dims_);
    shard.device->CopyToHost(shard.buffer, 0, shard.size * dims_,
                             staging.data());
    for (std::size_t local = 0; local < shard.size; ++local) {
      const std::size_t global = shard.global_ids[local];
      for (std::size_t j = 0; j < dims_; ++j) {
        rows[global * dims_ + j] =
            static_cast<double>(staging[local * dims_ + j]);
      }
    }
  }
  return rows;
}

void DeviceSample::ObserveShardSeconds(std::span<const double> busy_seconds) {
  if (group_ == nullptr) return;
  FKDE_CHECK(busy_seconds.size() == shards_.size());
  const double alpha = group_->options().ewma_alpha;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = shards_[i];
    if (shard.size == 0 || busy_seconds[i] <= 0.0) continue;
    const double rate =
        static_cast<double>(shard.size) / busy_seconds[i];
    shard.rate_ewma = shard.rate_ewma == 0.0
                          ? rate
                          : alpha * rate + (1.0 - alpha) * shard.rate_ewma;
  }
  observed_passes_ += 1;
}

bool DeviceSample::MaybeRebalance() {
  if (group_ == nullptr || shards_.size() < 2 || size_ == 0) return false;
  const DeviceGroupOptions& options = group_->options();
  if (!options.rebalance) return false;
  if (observed_passes_ < options.rebalance_interval) return false;
  observed_passes_ = 0;

  // Until every non-empty shard has a measurement the initial
  // throughput-weighted split stands.
  std::vector<double> weights(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].size > 0 && shards_[i].rate_ewma == 0.0) return false;
    weights[i] = shards_[i].rate_ewma;
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    // An empty shard never measures; seed it with the slowest measured
    // rate so it can re-enter the partition.
    if (weights[i] == 0.0) {
      double slowest = 0.0;
      for (double w : weights) {
        if (w > 0.0) slowest = slowest == 0.0 ? w : std::min(slowest, w);
      }
      weights[i] = slowest;
    }
  }

  const std::vector<std::size_t> targets = Apportion(size_, weights);
  bool beyond_trigger = false;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const double target = static_cast<double>(targets[i]);
    const double deviation =
        std::abs(static_cast<double>(shards_[i].size) - target);
    if (deviation > std::max(1.0, options.rebalance_trigger * target)) {
      beyond_trigger = true;
    }
  }
  if (!beyond_trigger) return false;

  // Peel rows off donor tails into receiver tails until every shard
  // matches its target. Tail moves never shift surviving device rows.
  bool migrated = false;
  for (std::size_t to = 0; to < shards_.size(); ++to) {
    while (shards_[to].size < targets[to]) {
      std::size_t from = shards_.size();
      std::size_t excess = 0;
      for (std::size_t i = 0; i < shards_.size(); ++i) {
        if (shards_[i].size > targets[i] &&
            shards_[i].size - targets[i] > excess) {
          from = i;
          excess = shards_[i].size - targets[i];
        }
      }
      if (from == shards_.size()) break;
      const std::size_t count =
          std::min(excess, targets[to] - shards_[to].size);
      MigrateRows(from, to, count);
      migrated = true;
    }
  }
  if (migrated) migration_epoch_ += 1;
  return migrated;
}

void DeviceSample::MigrateRows(std::size_t from, std::size_t to,
                               std::size_t count) {
  Shard& donor = shards_[from];
  Shard& receiver = shards_[to];
  FKDE_CHECK(count > 0 && count <= donor.size);
  FKDE_CHECK(receiver.size + count <= capacity_);
  // Ordinary metered transfers: donor tail read-back, receiver tail
  // upload. The blocking read-back drains any work still enqueued on the
  // donor; the upload lands beyond the receiver's live range, so its
  // in-order queue needs no extra synchronization.
  std::vector<float> staging(count * dims_);
  donor.device->CopyToHost(donor.buffer, (donor.size - count) * dims_,
                           count * dims_, staging.data());
  receiver.device->CopyToDevice(staging.data(), count * dims_,
                                &receiver.buffer, receiver.size * dims_);
  for (std::size_t j = 0; j < count; ++j) {
    const std::uint32_t global = donor.global_ids[donor.size - count + j];
    slot_map_[global] = {static_cast<std::uint32_t>(to),
                         static_cast<std::uint32_t>(receiver.size + j)};
    receiver.global_ids.push_back(global);
  }
  donor.global_ids.resize(donor.size - count);
  donor.size -= count;
  receiver.size += count;
  rows_migrated_ += count;
  // The receiver's new tail is stale in its SoA mirror; the donor only
  // shrank, so its strips stay valid for the surviving rows.
  MarkSoaDirty(to, receiver.size - count, count);
}

std::vector<std::size_t> DeviceSample::shard_sizes() const {
  std::vector<std::size_t> sizes;
  sizes.reserve(shards_.size());
  for (const Shard& shard : shards_) sizes.push_back(shard.size);
  return sizes;
}

std::vector<double> DeviceSample::shard_rates() const {
  std::vector<double> rates;
  rates.reserve(shards_.size());
  for (const Shard& shard : shards_) rates.push_back(shard.rate_ewma);
  return rates;
}

}  // namespace fkde
