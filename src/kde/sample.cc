#include "kde/sample.h"

#include <algorithm>

namespace fkde {

DeviceSample::DeviceSample(Device* device, std::size_t capacity,
                           std::size_t dims)
    : device_(device), capacity_(capacity), dims_(dims) {
  FKDE_CHECK(device != nullptr);
  FKDE_CHECK(capacity > 0 && dims > 0);
  buffer_ = device_->CreateBuffer<float>(capacity * dims);
}

Status DeviceSample::LoadFromTable(const Table& table, Rng* rng) {
  if (table.empty()) {
    return Status::FailedPrecondition("cannot sample an empty table");
  }
  if (table.num_cols() != dims_) {
    return Status::InvalidArgument("table dims do not match sample dims");
  }
  const std::vector<std::size_t> rows =
      table.SampleWithoutReplacement(capacity_, rng);
  // Stage on the host (with double->float conversion, mirroring the
  // paper's type transformation during ANALYZE), then one bulk transfer.
  std::vector<float> staging(rows.size() * dims_);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto row = table.Row(rows[i]);
    for (std::size_t j = 0; j < dims_; ++j) {
      staging[i * dims_ + j] = static_cast<float>(row[j]);
    }
  }
  device_->CopyToDevice(staging.data(), staging.size(), &buffer_);
  size_ = rows.size();
  return Status::OK();
}

Status DeviceSample::LoadRows(std::span<const double> rows_data,
                              std::size_t rows) {
  if (rows_data.size() != rows * dims_) {
    return Status::InvalidArgument("row data size mismatch");
  }
  if (rows > capacity_) {
    return Status::InvalidArgument("more rows than sample capacity");
  }
  std::vector<float> staging(rows_data.size());
  for (std::size_t i = 0; i < rows_data.size(); ++i) {
    staging[i] = static_cast<float>(rows_data[i]);
  }
  device_->CopyToDevice(staging.data(), staging.size(), &buffer_);
  size_ = rows;
  return Status::OK();
}

void DeviceSample::ReplaceRow(std::size_t slot, std::span<const double> row) {
  FKDE_CHECK(slot < size_);
  FKDE_CHECK(row.size() == dims_);
  float staging[64];
  FKDE_CHECK_MSG(dims_ <= 64, "dims beyond the stack staging buffer");
  for (std::size_t j = 0; j < dims_; ++j) {
    staging[j] = static_cast<float>(row[j]);
  }
  device_->CopyToDevice(staging, dims_, &buffer_, slot * dims_);
}

std::vector<double> DeviceSample::ReadRow(std::size_t slot) {
  FKDE_CHECK(slot < size_);
  std::vector<float> staging(dims_);
  device_->CopyToHost(buffer_, slot * dims_, dims_, staging.data());
  return std::vector<double>(staging.begin(), staging.end());
}

}  // namespace fkde
