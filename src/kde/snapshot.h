/// \file snapshot.h
/// \brief Versioned binary model snapshots (warm restart / eviction).
///
/// A database keeps one KDE model per (table, column-set) and must carry
/// them across restarts — the role of `pg_kdemodels` in the original
/// GPU-KDE Postgres integration, where ANALYZE-built models are written
/// to a catalog relation and reloaded lazily. `SnapshotModel` serializes
/// a `KdeSelectivityEstimator` into a self-contained blob and
/// `RestoreModel` rebuilds it onto a (possibly different) device or
/// device group, with the guarantee that matters for an optimizer:
///
///   **a restored model is bitwise-faithful** — it returns the same
///   `Estimate`/`EstimateBatch` bits and makes the same Karma replacement
///   and bandwidth-update decisions the original would have made for any
///   subsequent query stream.
///
/// That guarantee holds because everything behavior-bearing is captured
/// exactly: the sample rows (stored as device floats; the double staging
/// in the blob is a lossless widening), their per-shard placement (a
/// rebalanced layout is reproduced verbatim, not re-apportioned), the
/// bandwidth and optional per-point scale bits, the RMSprop optimizer
/// trajectory, the cumulative Karma scores, replacement slots collected
/// but not yet applied, the reservoir counters, the periodic feedback
/// ring, and the full xoshiro256** RNG state (including the buffered
/// Gaussian spare). In-flight device passes are folded into host state by
/// `KdeSelectivityEstimator::Quiesce()` before serialization.
///
/// ## Format
///
/// Little-endian, fixed-width fields; doubles are stored as their raw
/// IEEE-754 bits (bitwise round-trip by construction). The layout is
///
///   magic u32 ("FKDM") | version u32 | mode u32 | dims u32 |
///   capacity u64 | rows u64 | shards u32 | config block | rng block |
///   sample rows (rows*dims f64, global-slot order) | shard layout |
///   shard rate EWMAs | bandwidth | scales? | adaptive state? |
///   karma scores? | pending replacement slots | reservoir counters? |
///   periodic ring | counters | batch report | fnv1a-64 checksum u64
///
/// `kModelSnapshotVersion` pins the layout; readers reject unknown
/// versions and corrupt blobs (checksum mismatch) rather than guess.

#ifndef FKDE_KDE_SNAPSHOT_H_
#define FKDE_KDE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "data/table.h"
#include "kde/kde_estimator.h"
#include "parallel/device.h"
#include "parallel/device_group.h"

namespace fkde {

/// First bytes of every snapshot blob: "FKDM" in file order.
inline constexpr std::uint32_t kModelSnapshotMagic = 0x4D444B46U;

/// Current layout version; bumped on any incompatible format change.
inline constexpr std::uint32_t kModelSnapshotVersion = 1;

/// \brief Parsed fixed-size snapshot prefix (catalog admission checks and
/// diagnostics — cheap to read without touching the payload).
struct ModelSnapshotHeader {
  std::uint32_t version = 0;
  KdeSelectivityEstimator::Mode mode =
      KdeSelectivityEstimator::Mode::kHeuristic;
  std::uint32_t dims = 0;
  std::uint64_t capacity = 0;  ///< Sample capacity, rows.
  std::uint64_t rows = 0;      ///< Live sample rows.
  std::uint32_t shards = 0;    ///< Shard count the layout was saved for.
};

/// Parses and validates the header of `bytes` (magic + version checked;
/// the payload checksum is NOT verified here — RestoreModel does that).
Result<ModelSnapshotHeader> ReadModelSnapshotHeader(
    std::span<const std::uint8_t> bytes);

/// Serializes `model` into a versioned blob. Quiesces the model first
/// (collects in-flight gradient/Karma passes into host state), which
/// never changes the model's subsequent estimates or decisions — the
/// original may keep serving after being snapshotted.
Result<std::vector<std::uint8_t>> SnapshotModel(
    KdeSelectivityEstimator* model);

/// Rebuilds the serialized model onto `device` (single-shard snapshots
/// only). `table` is the model's base table — the adaptive variant draws
/// Karma replacement rows from it — and must have the snapshot's dims.
Result<std::unique_ptr<KdeSelectivityEstimator>> RestoreModel(
    std::span<const std::uint8_t> bytes, Device* device, const Table* table);

/// Rebuilds the serialized model sharded across `group`; the group's
/// device count must equal the snapshot's shard count (a saved layout is
/// reproduced verbatim, never re-apportioned).
Result<std::unique_ptr<KdeSelectivityEstimator>> RestoreModel(
    std::span<const std::uint8_t> bytes, DeviceGroup* group,
    const Table* table);

}  // namespace fkde

#endif  // FKDE_KDE_SNAPSHOT_H_
