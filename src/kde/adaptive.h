/// \file adaptive.h
/// \brief Online bandwidth adaptation via mini-batch RMSprop (Listing 1).
///
/// Instead of re-running the batch optimization when the workload or the
/// data drifts, the adaptive estimator updates the bandwidth after each
/// query by stochastic gradient descent on the feedback loss. Following
/// the paper:
///
///  * gradients are averaged over mini-batches of N queries (default 10)
///    to dampen outliers;
///  * the per-dimension learning rate follows RMSprop/Rprop: increased by
///    a factor 1.2 when consecutive mini-batch gradients agree in sign,
///    halved otherwise, clamped to [1e-6, 50], and each update is scaled
///    by the running average of gradient magnitudes (smoothing 0.9);
///  * positivity is enforced by limiting any step toward zero to half the
///    current bandwidth — or, in logarithmic mode (Appendix D, the
///    default), by updating log h, which never leaves the positive
///    domain (the safeguard is removed there, as the paper prescribes).

#ifndef FKDE_KDE_ADAPTIVE_H_
#define FKDE_KDE_ADAPTIVE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/status.h"

namespace fkde {

/// \brief Listing 1 parameters, defaulted to the paper's values.
struct AdaptiveOptions {
  std::size_t mini_batch = 10;  ///< N: gradients averaged per update.
  double alpha = 0.9;           ///< Smoothing rate of magnitude average.
  double lr_min = 1e-6;         ///< lambda_min.
  double lr_max = 50.0;         ///< lambda_max.
  double lr_increase = 1.2;     ///< lambda_inc.
  double lr_decrease = 0.5;     ///< lambda_dec.
  double lr_initial = 1.0;      ///< Starting per-dimension rate.
  bool log_updates = true;      ///< Update log h instead of h (App. D).
};

/// \brief Serializable optimizer state of an `AdaptiveBandwidth` (model
/// snapshots): the partially accumulated mini-batch, the RMS magnitude
/// averages, the per-dimension Rprop rates and the sign-agreement memory.
/// A restored learner applies bitwise-identical updates to the saved one.
struct AdaptiveBandwidthState {
  std::vector<double> grad_accum;
  std::size_t batch_count = 0;
  std::vector<double> magnitude_avg;
  std::vector<double> rates;
  std::vector<double> prev_grad;
  bool has_prev_grad = false;
  std::size_t updates_applied = 0;
};

/// \brief Mini-batch RMSprop state machine for one bandwidth vector.
///
/// Owns no device state: the caller computes the loss gradient dL/dh on
/// the device and feeds it here. KdeSelectivityEstimator collects one
/// enqueued gradient per query (Section 5.5) and calls `Observe`; batched
/// consumers (SCV warm-start, offline tuning) feed a device-averaged
/// mini-batch gradient through `ObserveMiniBatch` instead. When a
/// mini-batch completes, the bandwidth is rewritten in place and the call
/// returns true so the caller can push it back to the device.
class AdaptiveBandwidth {
 public:
  AdaptiveBandwidth(std::size_t dims, const AdaptiveOptions& options);

  /// Accumulates one query's loss gradient dL/dh (arity dims). When the
  /// mini-batch is full, applies the RMSprop update to `bandwidth`
  /// (arity dims, entries > 0) and returns true; otherwise returns false.
  bool Observe(std::span<const double> loss_grad,
               std::vector<double>* bandwidth);

  /// Applies one RMSprop update from an ALREADY-AVERAGED mini-batch loss
  /// gradient dL̄/dh (arity dims), as produced by the batched device pass
  /// (`KdeEngine::EstimateBatchLoss` over the buffered mini-batch).
  /// Equivalent to `mini_batch` Observe calls whose gradients average to
  /// `mean_loss_grad` under a bandwidth held fixed across the batch.
  /// Drops any partially accumulated per-query state, rewrites
  /// `bandwidth` in place and always returns true.
  bool ObserveMiniBatch(std::span<const double> mean_loss_grad,
                        std::vector<double>* bandwidth);

  /// Number of model updates applied so far.
  std::size_t updates_applied() const { return updates_applied_; }

  /// Current per-dimension learning rates (for tests/diagnostics).
  const std::vector<double>& learning_rates() const { return rates_; }

  /// Drops any partially accumulated mini-batch (used when the sample is
  /// rebuilt and pending gradients no longer describe the model).
  void ResetBatch();

  /// Captures the complete optimizer state for serialization.
  AdaptiveBandwidthState SaveState() const;

  /// Resumes the exact optimizer trajectory captured by `SaveState`.
  /// Vector arities must match this learner's dims.
  Status RestoreState(const AdaptiveBandwidthState& state);

 private:
  void ApplyUpdate(std::span<const double> mean_grad,
                   std::vector<double>* bandwidth);

  AdaptiveOptions options_;
  std::size_t dims_;
  std::vector<double> grad_accum_;     // Sum of gradients in current batch.
  std::size_t batch_count_ = 0;
  std::vector<double> magnitude_avg_;  // Running avg of squared gradients.
  std::vector<double> rates_;          // Per-dimension learning rates.
  std::vector<double> prev_grad_;      // Last applied mini-batch gradient.
  bool has_prev_grad_ = false;
  std::size_t updates_applied_ = 0;
};

}  // namespace fkde

#endif  // FKDE_KDE_ADAPTIVE_H_
