#include "kde/variable.h"

#include <cmath>

namespace fkde {

Result<std::vector<double>> ComputeVariableScales(
    KdeEngine* engine, const VariableKdeOptions& options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must be non-null");
  }
  if (options.sensitivity < 0.0 || options.sensitivity > 1.0) {
    return Status::InvalidArgument("sensitivity must be in [0, 1]");
  }
  if (options.max_ratio < 1.0) {
    return Status::InvalidArgument("max_ratio must be >= 1");
  }
  const std::size_t s = engine->sample_size();
  const std::size_t d = engine->dims();
  Device* device = engine->device();
  // The O(s^2) pilot needs every point against every point. On a sharded
  // sample, gather the rows once onto the primary device (construction
  // time only — never the per-query path); the global-order copy also
  // makes the returned scales global-slot indexed, as SetPointScales
  // expects. Single-shard samples use their buffer directly.
  DeviceBuffer<float> gathered;
  const DeviceBuffer<float>* points;
  if (engine->sample()->num_shards() > 1) {
    const std::vector<double> rows = engine->sample()->GatherRows();
    std::vector<float> staging(rows.begin(), rows.end());
    gathered = device->CreateBuffer<float>(staging.size());
    device->CopyToDevice(staging.data(), staging.size(), &gathered);
    points = &gathered;
  } else {
    points = &engine->sample()->buffer();
  }
  const float* data = points->device_data();
  const std::vector<double>& h = engine->bandwidth();

  // Pilot density at each sample point: leave-one-out Gaussian product
  // KDE with the engine's current (fixed) bandwidth. One work item per
  // point; O(s) inner loop (the classic O(s^2 d) pilot pass).
  DeviceBuffer<double> densities = device->CreateBuffer<double>(s);
  {
    double inv_h[32];
    double norm = 1.0;
    constexpr double kInvSqrt2Pi = 0.3989422804014327;
    for (std::size_t j = 0; j < d; ++j) {
      inv_h[j] = 1.0 / h[j];
      norm *= kInvSqrt2Pi * inv_h[j];
    }
    double* out = densities.device_data();
    const double inv_h0 = inv_h[0];  // Silence unused in 1D fast path.
    (void)inv_h0;
    std::vector<double> inv_h_vec(inv_h, inv_h + d);
    const BufferAccess acc[] = {Reads(*points, 0, s * d),
                                Writes(densities, 0, s)};
    device->Launch(
        "variable_pilot_density", s, static_cast<double>(s * d) / 256.0,
        [out, data, s, d, norm, inv_h_vec](std::size_t begin,
                                           std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            const float* xi = data + i * d;
            double total = 0.0;
            for (std::size_t k = 0; k < s; ++k) {
              if (k == i) continue;  // Leave-one-out.
              const float* xk = data + k * d;
              double exponent = 0.0;
              for (std::size_t j = 0; j < d; ++j) {
                const double z = (static_cast<double>(xi[j]) -
                                  static_cast<double>(xk[j])) *
                                 inv_h_vec[j];
                exponent += z * z;
              }
              total += std::exp(-0.5 * exponent);
            }
            out[i] = norm * total / static_cast<double>(s > 1 ? s - 1 : 1);
          }
        },
        acc);
  }
  std::vector<double> pilot(s);
  device->CopyToHost(densities, 0, s, pilot.data());

  // Geometric mean normalization (on log scale for stability); zero
  // densities (isolated points under a tiny pilot) floor at the smallest
  // positive density.
  double min_positive = 0.0;
  for (double f : pilot) {
    if (f > 0.0 && (min_positive == 0.0 || f < min_positive)) {
      min_positive = f;
    }
  }
  if (min_positive == 0.0) {
    return Status::FailedPrecondition(
        "pilot density vanished everywhere; bandwidth too small");
  }
  double log_sum = 0.0;
  for (double& f : pilot) {
    if (f <= 0.0) f = min_positive;
    log_sum += std::log(f);
  }
  const double log_geometric_mean = log_sum / static_cast<double>(s);

  std::vector<double> scales(s);
  for (std::size_t i = 0; i < s; ++i) {
    const double scale = std::exp(-options.sensitivity *
                                  (std::log(pilot[i]) - log_geometric_mean));
    scales[i] =
        std::clamp(scale, 1.0 / options.max_ratio, options.max_ratio);
  }
  return scales;
}

Status EnableVariableKde(KdeEngine* engine,
                         const VariableKdeOptions& options) {
  FKDE_ASSIGN_OR_RETURN(const std::vector<double> scales,
                        ComputeVariableScales(engine, options));
  return engine->SetPointScales(scales);
}

}  // namespace fkde
