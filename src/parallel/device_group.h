/// \file device_group.h
/// \brief A group of execution devices acting as one logical accelerator.
///
/// The paper evaluates its estimator on a single OpenCL device (Section
/// 5.4 / Figure 7 show throughput scaling linearly in sample size until
/// that device saturates). A `DeviceGroup` is the step past the ceiling:
/// it owns N devices (any mix of `OpenClCpu` / `SimulatedGtx460`
/// profiles) over one shared thread pool, and the KDE layer shards the
/// device-resident sample across them (see kde/sample.h). Each device
/// keeps its own in-order `CommandQueue` and dispatcher thread, so
/// per-shard kernels enqueued back-to-back on different devices really
/// execute — and are modeled — concurrently; the group-level modeled time
/// of a blocking pass is the max over the member devices' clocks.
///
/// Partitioning is self-tuning in the paper's spirit: `InitialWeights()`
/// seeds shard sizes proportional to each profile's modeled compute
/// throughput, and the sharded sample keeps an EWMA of measured per-shard
/// throughput to rebalance shard boundaries at runtime
/// (`DeviceGroupOptions` below tunes that loop).

#ifndef FKDE_PARALLEL_DEVICE_GROUP_H_
#define FKDE_PARALLEL_DEVICE_GROUP_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "parallel/device.h"
#include "parallel/thread_pool.h"

namespace fkde {

/// \brief Tuning knobs of the self-balancing shard partitioner.
struct DeviceGroupOptions {
  /// Explicit initial shard weights (one per device, any positive scale).
  /// Empty: weight by `DeviceProfile::compute_throughput`.
  std::vector<double> initial_weights;

  /// Enables runtime rebalancing from measured per-shard throughput.
  bool rebalance = true;

  /// EWMA smoothing factor for measured per-shard throughput
  /// (rows/busy-second): `rate = alpha * sample + (1 - alpha) * rate`.
  double ewma_alpha = 0.3;

  /// Number of observed estimate passes between rebalance checks.
  std::size_t rebalance_interval = 8;

  /// Relative shard-size deviation from target that triggers migration;
  /// below it the partition is considered converged (hysteresis so the
  /// balancer does not thrash rows over the bus).
  double rebalance_trigger = 0.05;

  /// No shard shrinks below this many rows (when the sample has them),
  /// keeping every device warm enough to measure.
  std::size_t min_shard_rows = 64;

  /// Hazard checking for the whole group: one shared `HazardChecker`
  /// attached to every member device, so cross-device wait-list edges
  /// resolve against a single command DAG. `kOff` defers to the
  /// per-device `HAZARD_STRICT=1` environment toggle — but a group
  /// promotes even env-attached per-device checkers to one shared
  /// checker (per-device DAGs cannot order cross-device edges).
  HazardMode hazard_mode = HazardMode::kOff;
};

/// \brief Owns N devices that jointly host one sharded KDE model.
///
/// Group-level accessors fold the member devices' modeled clocks and
/// ledgers: a blocking multi-device pass costs the *max* of the member
/// host timelines (each device has its own dispatcher; submissions to
/// different queues overlap), while ledger counters are sums.
class DeviceGroup {
 public:
  explicit DeviceGroup(const std::vector<DeviceProfile>& profiles,
                       DeviceGroupOptions options = {},
                       ThreadPool* pool = &ThreadPool::Global());

  DeviceGroup(const DeviceGroup&) = delete;
  DeviceGroup& operator=(const DeviceGroup&) = delete;

  std::size_t size() const { return devices_.size(); }
  Device* device(std::size_t i) const { return devices_[i].get(); }
  const DeviceGroupOptions& options() const { return options_; }

  /// The group-wide hazard checker shared by every member device, or
  /// nullptr when checking is off.
  HazardChecker* hazard_checker() const { return hazard_checker_.get(); }

  /// Initial shard weights, normalized to sum 1: `options.initial_weights`
  /// when set, else each device's modeled `compute_throughput`.
  std::vector<double> InitialWeights() const;

  /// Max over member devices' `ModeledSeconds()` — the group-level cost of
  /// a blocking pass (per-device submissions overlap across queues).
  double MaxModeledSeconds() const;

  /// Sum of member devices' `HostStallSeconds()`.
  double TotalHostStallSeconds() const;

  /// Element-wise sum of member ledgers.
  TransferLedger AggregateLedger() const;

  /// Element-wise sum of member scratch-pool counters — the group's
  /// reclaimable (`pooled_bytes`) and in-use (`outstanding`) scratch
  /// footprint, which the model catalog folds into its device-memory
  /// budget accounting.
  BufferPoolStats AggregateScratchStats() const;

  /// Folds the member queues' occupancy counters: `total_commands` and
  /// `dispatcher_wait_s` sum, `depth_high_water` and `pending` take the
  /// max — one command deep everywhere means the pipeline never filled,
  /// regardless of how many devices it failed to fill on.
  CommandQueueStats AggregateQueueStats() const;

  /// Frees every parked scratch buffer on every member device — the
  /// cheap first response to budget pressure, tried before any model is
  /// evicted (outstanding handles are unaffected).
  void TrimScratchPools();

  /// Advances every member's host clock (external work covers all
  /// devices' enqueued passes at once — there is one host).
  void AdvanceHostTime(double seconds);

  void ResetModeledTime();
  void ResetLedger();

 private:
  DeviceGroupOptions options_;
  /// Declared before the devices: member queues drain (and notify the
  /// checker) during device destruction.
  std::shared_ptr<HazardChecker> hazard_checker_;
  std::vector<std::unique_ptr<Device>> devices_;
};

/// \brief Parses a device-group topology spec: '+'-separated profile names
/// from `harness`-style vocabulary, e.g. "gpu", "cpu+gpu", "gpu+gpu".
/// Names: "cpu" -> `OpenClCpu`, "gpu" -> `SimulatedGtx460`.
Result<std::vector<DeviceProfile>> ParseDeviceTopology(
    const std::string& spec);

}  // namespace fkde

#endif  // FKDE_PARALLEL_DEVICE_GROUP_H_
