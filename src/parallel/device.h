/// \file device.h
/// \brief OpenCL-style execution layer: devices, device-resident buffers,
/// kernel launches, and explicit host<->device transfers.
///
/// The paper runs its estimator through OpenCL on either a discrete GPU
/// (NVIDIA GTX-460) or a multi-core CPU. We reproduce that execution model
/// with two backends:
///
///  * **CPU backend** — kernels really execute on a thread pool; this is a
///    faithful reimplementation of the paper's "OpenCL on the host CPU"
///    configuration.
///  * **Simulated GPU backend** — kernels execute on the same thread pool
///    (so all results are real), but *time* is accounted by a calibrated
///    `DeviceProfile` cost model (per-launch latency, PCIe transfer latency
///    and bandwidth, compute throughput). This preserves the performance
///    *shape* of the paper's Figure 7 without requiring GPU hardware; the
///    substitution is documented in DESIGN.md §1.
///
/// All work is submitted through the device's in-order `CommandQueue`
/// (see command_queue.h): the blocking `Launch`/`CopyToDevice`/`CopyToHost`
/// convenience calls below are exactly enqueue-plus-`Event::Wait()`, and
/// asynchronous callers hold the returned events instead. Modeled time
/// follows the two-timeline rule documented in command_queue.h: the host
/// clock pays submission latencies and stalls, the device clock carries
/// compute/transfer durations, and overlap with concurrent host work
/// (`AdvanceHostTime`) emerges from the dependency graph.
///
/// Both backends meter every host<->device transfer in a `TransferLedger`
/// at enqueue time, which the evaluation uses to validate the paper's
/// transfer-efficiency claims (the sample stays device-resident; only
/// query bounds, estimates, feedback scalars, and replaced sample rows
/// cross the bus).

#ifndef FKDE_PARALLEL_DEVICE_H_
#define FKDE_PARALLEL_DEVICE_H_

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "parallel/command_queue.h"
#include "parallel/hazard_checker.h"
#include "parallel/simd.h"
#include "parallel/thread_pool.h"

namespace fkde {

/// \brief Cost-model parameters of an execution device.
///
/// Calibrated against the hardware of the paper's Section 6.4 testbed; see
/// `DeviceProfile::OpenClCpu()` and `DeviceProfile::SimulatedGtx460()`.
struct DeviceProfile {
  /// Human-readable device name.
  std::string name = "cpu";
  /// Fixed cost of scheduling one kernel, seconds. OpenCL runtimes impose
  /// tens of microseconds per enqueue; this produces the flat region of
  /// Figure 7 for small models.
  double launch_latency_s = 30e-6;
  /// Fixed cost of scheduling one host<->device transfer, seconds.
  double transfer_latency_s = 5e-6;
  /// Sustained transfer bandwidth, bytes/second (PCIe 2.0 x16 for the GPU).
  double transfer_bandwidth = 20e9;
  /// Sustained kernel throughput in work-units/second, where a work-unit is
  /// one `ops_per_item` unit reported at launch time (we use
  /// one sample-point-attribute as the unit for KDE kernels).
  double compute_throughput = 2.56e8;
  /// How the fused KDE kernels execute on the host threads backing this
  /// device (see simd.h). Scalar by default: the seed's per-point loops,
  /// bit-identical ledger and launch behavior. Engines resolve this
  /// request per shard via `ResolveKernelBackend` (env override + CPU
  /// feature dispatch).
  KernelBackend kernel_backend = KernelBackend::kScalar;
  /// Lane precision of the SIMD path; ignored by the scalar backend.
  KernelPrecision kernel_precision = KernelPrecision::kDouble;

  /// Profile matching the paper's quad-core Xeon E5620 running Intel's
  /// OpenCL SDK: ~32K-point 8D models evaluated in ~1 ms.
  static DeviceProfile OpenClCpu();

  /// Profile matching the paper's NVIDIA GTX-460: roughly 4x the CPU's
  /// kernel throughput, higher per-launch and per-transfer latency, and
  /// PCIe-limited transfers. ~128K-point 8D models evaluated in ~1 ms.
  static DeviceProfile SimulatedGtx460();

  /// The OpenClCpu host with the AVX2 kernel backend and float lane math:
  /// same launch/transfer costs, but `compute_throughput` is scaled by
  /// the *measured* simd-vs-scalar throughput ratio of the fused
  /// contribution kernel (see kde/kernel_backend.h's calibration), so
  /// modeled time for cpu shards in `cpu-simd+gpu` topologies reflects
  /// the real vectorized CPU. Falls back to scalar math (and the scalar
  /// cost model) on machines without AVX2.
  static DeviceProfile SimdCpu();
};

/// Installs the calibrated simd-vs-scalar throughput ratio used by
/// `DeviceProfile::SimdCpu()`. Called once by the KDE layer's calibration
/// (kde/kernel_backend.h) — the parallel layer cannot measure KDE math
/// itself without inverting the dependency. Ratios <= 0 are ignored.
void SetSimdThroughputRatio(double ratio);

/// The currently installed simd throughput ratio (1.0 until calibrated).
double SimdThroughputRatio();

/// \brief Counters for all traffic and launches on a device.
///
/// Counted at enqueue time (deterministically, under the device mutex),
/// so the ledger is meaningful regardless of how far the dispatcher has
/// actually progressed.
struct TransferLedger {
  std::uint64_t bytes_to_device = 0;
  std::uint64_t bytes_to_host = 0;
  std::uint64_t transfers_to_device = 0;
  std::uint64_t transfers_to_host = 0;
  std::uint64_t kernel_launches = 0;

  std::uint64_t total_bytes() const { return bytes_to_device + bytes_to_host; }
};

class Device;

/// \brief Typed device-resident memory.
///
/// Mirrors an OpenCL buffer: created via `Device::CreateBuffer`, filled via
/// `Device::CopyToDevice`, and read back via `Device::CopyToHost`. Kernel
/// functors access storage via `device_data()`. Move-only, like a real
/// device allocation: copying would silently duplicate "device memory"
/// without any metered transfer and mask transfer bugs.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  DeviceBuffer(DeviceBuffer&& other) noexcept
      : storage_(std::move(other.storage_)),
        id_(std::exchange(other.id_, 0)) {}
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      // Release the moved-over allocation's registration BEFORE adopting
      // the new one, so the old id never lingers in device bookkeeping
      // (the hazard checker treats a lingering id as still-live memory).
      ReleaseRegistration();
      storage_ = std::move(other.storage_);
      id_ = std::exchange(other.id_, 0);
    }
    return *this;
  }
  ~DeviceBuffer() { ReleaseRegistration(); }

  std::size_t size() const { return storage_.size(); }
  bool empty() const { return storage_.empty(); }

  /// Process-unique id in the global buffer registry (see
  /// hazard_checker.h); 0 for a default-constructed (unallocated)
  /// buffer. Declared access-sets name buffers by this id.
  std::uint64_t buffer_id() const { return id_; }

  /// Raw storage pointer — for use inside kernel functors only. Stable
  /// across moves of the buffer object (the backing heap allocation moves
  /// with it), which lets enqueued commands capture it safely as long as
  /// the buffer outlives them.
  T* device_data() { return storage_.data(); }
  const T* device_data() const { return storage_.data(); }

 private:
  friend class Device;
  explicit DeviceBuffer(std::size_t n)
      : storage_(n),
        id_(internal::BufferRegistry::Global().Register(n * sizeof(T))) {}

  void ReleaseRegistration() {
    if (id_ != 0) {
      internal::BufferRegistry::Global().Release(id_);
      id_ = 0;
    }
  }

  std::vector<T> storage_;
  std::uint64_t id_ = 0;
};

/// Sentinel element count meaning "through the end of the buffer" for the
/// access-set helpers below.
inline constexpr std::size_t kWholeBuffer = ~static_cast<std::size_t>(0);

namespace internal {

template <typename T>
BufferAccess MakeAccess(const DeviceBuffer<T>& buffer, AccessMode mode,
                        std::size_t offset, std::size_t n) {
  if (n == kWholeBuffer) {
    n = buffer.size() - std::min(offset, buffer.size());
  }
  FKDE_CHECK_MSG(offset + n <= buffer.size(),
                 "declared buffer access out of bounds");
  return BufferAccess{buffer.buffer_id(), offset * sizeof(T), n * sizeof(T),
                      mode};
}

}  // namespace internal

/// Access-set builders for kernel launches: the byte range covering `n`
/// elements starting at element `offset` (defaults: the whole buffer).
/// Example:
///   const BufferAccess acc[] = {Reads(sample), Writes(contributions)};
///   queue->EnqueueLaunch("kde_contributions", s, d, body, acc);
template <typename T>
BufferAccess Reads(const DeviceBuffer<T>& buffer, std::size_t offset = 0,
                   std::size_t n = kWholeBuffer) {
  return internal::MakeAccess(buffer, AccessMode::kRead, offset, n);
}

template <typename T>
BufferAccess Writes(const DeviceBuffer<T>& buffer, std::size_t offset = 0,
                    std::size_t n = kWholeBuffer) {
  return internal::MakeAccess(buffer, AccessMode::kWrite, offset, n);
}

template <typename T>
BufferAccess ReadsWrites(const DeviceBuffer<T>& buffer, std::size_t offset = 0,
                         std::size_t n = kWholeBuffer) {
  return internal::MakeAccess(buffer, AccessMode::kReadWrite, offset, n);
}

/// \brief Counters of a device's scratch-buffer pool (see
/// `Device::AcquireScratch`). A *hit* reuses a parked buffer — no
/// allocation, no metered traffic; a *miss* allocates a fresh one. The
/// batched hot paths are pinned to hit after warm-up (buffer_pool_test).
struct BufferPoolStats {
  std::uint64_t hits = 0;      ///< Acquisitions served from the pool.
  std::uint64_t misses = 0;    ///< Acquisitions that allocated.
  std::uint64_t releases = 0;  ///< Buffers parked back into the pool.
  std::uint64_t outstanding = 0;  ///< Currently acquired, not yet parked.
  std::uint64_t pooled_bytes = 0; ///< Bytes parked and ready for reuse.
};

/// \brief Shared handle to a pooled scratch buffer. When the last
/// reference drops — including references captured by enqueued kernel
/// bodies — the buffer is parked back into its device's pool, not freed.
using ScratchBuffer = std::shared_ptr<DeviceBuffer<double>>;

namespace internal {

/// Size-bucketed free-list behind `Device::AcquireScratch`. Held via
/// shared_ptr by the device *and* by every ScratchBuffer deleter, so
/// releases that happen on dispatcher threads during teardown still have
/// a live pool to park into.
struct ScratchPool {
  std::mutex mu;
  std::map<std::size_t, std::vector<DeviceBuffer<double>>> free_by_bucket;
  BufferPoolStats stats;
};

/// Strict checker when `HAZARD_STRICT=1` is set in the environment (the
/// CI toggle that runs every suite under hazard checking); nullptr
/// otherwise.
std::shared_ptr<HazardChecker> EnvHazardChecker();

}  // namespace internal

/// \brief An execution device with device-resident memory.
///
/// All compute goes through `Launch` or `CommandQueue::EnqueueLaunch`; all
/// data movement goes through `CopyToDevice`/`CopyToHost` or their enqueue
/// variants. Host code must not touch a DeviceBuffer's storage outside of
/// a kernel functor — the transfer ledger is only meaningful if this
/// discipline is kept (enforced by convention and code review, as in real
/// OpenCL code).
class Device {
 public:
  explicit Device(DeviceProfile profile,
                  ThreadPool* pool = &ThreadPool::Global())
      : profile_(std::move(profile)),
        pool_(pool),
        scratch_pool_(std::make_shared<internal::ScratchPool>()),
        hazard_checker_(internal::EnvHazardChecker()),
        default_queue_(std::make_unique<CommandQueue>(this)) {}

  // The default queue holds a pointer back to this device.
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const DeviceProfile& profile() const { return profile_; }
  ThreadPool* pool() const { return pool_; }

  /// The device's in-order command queue. Asynchronous callers enqueue
  /// here and hold the returned events.
  CommandQueue* default_queue() { return default_queue_.get(); }

  /// Occupancy counters of the default queue (depth high-water mark,
  /// total commands, dispatcher idle time) — the pipeline-fill signal the
  /// streaming executor and the traffic bench report per device.
  CommandQueueStats queue_stats() const { return default_queue_->Stats(); }

  /// Allocates an uninitialized device buffer of `n` elements.
  template <typename T>
  DeviceBuffer<T> CreateBuffer(std::size_t n);

  /// Acquires a pooled scratch buffer of at least `n` doubles (rounded up
  /// to a power-of-two bucket). Contents are stale — callers must write
  /// before reading. The buffer parks back into the pool when the last
  /// handle drops, so enqueued kernel bodies may capture the handle to
  /// keep scratch alive exactly as long as the command chain needs it.
  /// Pool traffic is host-side bookkeeping only: never metered in the
  /// ledger, never charged on the modeled clocks.
  ScratchBuffer AcquireScratch(std::size_t n);

  /// Snapshot of the scratch-pool counters.
  BufferPoolStats scratch_pool_stats() const;

  /// Frees every parked scratch buffer (outstanding handles are
  /// unaffected and still park on release).
  void TrimScratchPool();

  /// Copies `n` host elements into `dst` starting at element `offset`,
  /// blocking until completion (enqueue + wait). Empty transfers are free.
  template <typename T>
  void CopyToDevice(const T* host, std::size_t n, DeviceBuffer<T>* dst,
                    std::size_t offset = 0);

  /// Copies `n` device elements starting at `offset` out to `host`,
  /// blocking until completion (enqueue + wait). Empty transfers are free.
  template <typename T>
  void CopyToHost(const DeviceBuffer<T>& src, std::size_t offset,
                  std::size_t n, T* host);

  /// Enqueues a data-parallel kernel over `global_size` work items and
  /// blocks until completion. `ops_per_item` is the work-unit count per
  /// item used for modeled-time accounting. The functor receives a
  /// half-open index range [begin, end) (a "work-group" of items).
  /// `accesses` declares the buffer ranges the kernel touches (see
  /// command_queue.h).
  void Launch(const char* kernel_name, std::size_t global_size,
              double ops_per_item,
              const std::function<void(std::size_t, std::size_t)>& body,
              std::span<const BufferAccess> accesses = {});

  /// Attaches a fresh hazard checker in `mode` (replacing any current
  /// one), or detaches with `HazardMode::kOff`. Overrides the
  /// `HAZARD_STRICT=1` environment toggle applied at construction.
  /// Attach/detach before enqueuing work — the pointer is read unlocked
  /// on the enqueue paths.
  void EnableHazardChecking(HazardMode mode);

  /// Shares an existing checker (e.g. a DeviceGroup-wide one, so
  /// cross-device wait-list edges resolve against one DAG).
  void AttachHazardChecker(std::shared_ptr<HazardChecker> checker);

  /// The attached checker, or nullptr when checking is off. The
  /// zero-cost-when-off flag: enqueue paths branch on this pointer.
  HazardChecker* hazard_checker() const { return hazard_checker_.get(); }

  std::shared_ptr<HazardChecker> shared_hazard_checker() const {
    return hazard_checker_;
  }

  /// Advances the host modeled clock by `seconds` of *external* work —
  /// e.g. the database executing the query whose selectivity was just
  /// estimated (Section 5.5). Enqueued device work proceeds during this
  /// time, so a later `Event::Wait()` stalls only for whatever the
  /// external work did not cover. External time is excluded from
  /// `ModeledSeconds()`.
  void AdvanceHostTime(double seconds);

  /// Accumulated modeled host-timeline cost — submission latencies,
  /// waited-for compute/transfer durations, and stalls — since the last
  /// `ResetModeledTime`, excluding `AdvanceHostTime`. This is the
  /// estimator's own overhead per the paper's Figure 7. For the CPU
  /// profile it approximates real runtime; for the simulated GPU it *is*
  /// the reported runtime.
  double ModeledSeconds() const;

  /// Portion of `ModeledSeconds()` spent stalled in `Event::Wait()` /
  /// `Finish()` for device work that had not completed on the modeled
  /// timeline — the idle gap that enqueue-based overlap eliminates.
  double HostStallSeconds() const;

  /// Accumulated modeled device occupancy (compute + transfer durations)
  /// since the last `ResetModeledTime`, whether or not the host waited.
  double DeviceBusySeconds() const;

  /// Stall fraction of the modeled clock —
  /// `HostStallSeconds / ModeledSeconds`, read under one lock — the
  /// "idle gap" of the benches: time the host sat waiting for device work
  /// that enqueue-based overlap could have hidden. 0 when nothing has
  /// been modeled yet.
  double IdleGapFraction() const;

  void ResetModeledTime();

  const TransferLedger& ledger() const { return ledger_; }
  void ResetLedger();

 private:
  friend class Event;
  friend class CommandQueue;

  /// Books one kernel launch at enqueue time: charges the submission
  /// latency to the host clock, schedules the compute on the device clock
  /// after `deps_end_s` and everything already enqueued, and meters the
  /// ledger. Returns the command's modeled completion time.
  double BookLaunch(std::size_t global_size, double ops_per_item,
                    double deps_end_s);

  /// Books one transfer at enqueue time (same rules as BookLaunch).
  double BookTransfer(std::uint64_t bytes, bool to_device, double deps_end_s);

  /// Advances the host clock to `modeled_end_s` (an absolute device-
  /// timeline instant); the shortfall is charged as a stall. Called by
  /// `Event::Wait`.
  void SyncHostTo(double modeled_end_s);

  DeviceProfile profile_;
  ThreadPool* pool_;
  TransferLedger ledger_;

  /// Guards the ledger and the modeled clocks. All bookkeeping happens at
  /// enqueue/wait time on host threads; kernel execution never takes it.
  mutable std::mutex mu_;
  double host_pos_s_ = 0.0;    ///< Host timeline position (monotone).
  double device_pos_s_ = 0.0;  ///< Device-available instant (monotone).
  double overhead_s_ = 0.0;    ///< ModeledSeconds accumulator.
  double stall_s_ = 0.0;       ///< HostStallSeconds accumulator.
  double busy_s_ = 0.0;        ///< DeviceBusySeconds accumulator.

  /// Shared with every ScratchBuffer deleter: a handle released after the
  /// device is gone still parks into a live pool.
  std::shared_ptr<internal::ScratchPool> scratch_pool_;

  /// Hazard checker, or nullptr when checking is off. Declared before
  /// the queue: the queue's destructor drains through `Event::Wait`,
  /// which notifies the checker.
  std::shared_ptr<HazardChecker> hazard_checker_;

  /// Declared last: destroyed first, draining all pending commands while
  /// the profile/ledger/pool above are still alive.
  std::unique_ptr<CommandQueue> default_queue_;
};

template <typename T>
DeviceBuffer<T> Device::CreateBuffer(std::size_t n) {
  return DeviceBuffer<T>(n);
}

template <typename T>
Event CommandQueue::EnqueueCopyToDevice(const T* host, std::size_t n,
                                        DeviceBuffer<T>* dst,
                                        std::size_t offset,
                                        std::span<const Event> wait_list) {
  FKDE_CHECK_MSG(offset + n <= dst->size(), "CopyToDevice out of bounds");
  if (n == 0) return Event();  // Nothing moves: not metered, not charged.
  // Transfers auto-declare their device-side access-set; the host
  // pointer is untracked staging memory.
  return EnqueueCopyBytes(dst->device_data() + offset, host, n * sizeof(T),
                          /*to_device=*/true, Writes(*dst, offset, n),
                          wait_list);
}

template <typename T>
Event CommandQueue::EnqueueCopyToHost(const DeviceBuffer<T>& src,
                                      std::size_t offset, std::size_t n,
                                      T* host,
                                      std::span<const Event> wait_list) {
  FKDE_CHECK_MSG(offset + n <= src.size(), "CopyToHost out of bounds");
  if (n == 0) return Event();  // Nothing moves: not metered, not charged.
  return EnqueueCopyBytes(host, src.device_data() + offset, n * sizeof(T),
                          /*to_device=*/false, Reads(src, offset, n),
                          wait_list);
}

template <typename T>
void Device::CopyToDevice(const T* host, std::size_t n, DeviceBuffer<T>* dst,
                          std::size_t offset) {
  default_queue_->EnqueueCopyToDevice(host, n, dst, offset).Wait();
}

template <typename T>
void Device::CopyToHost(const DeviceBuffer<T>& src, std::size_t offset,
                        std::size_t n, T* host) {
  default_queue_->EnqueueCopyToHost(src, offset, n, host).Wait();
}

/// Work-group size of the binary-tree reductions, mirroring the OpenCL
/// implementation. Exposed so callers fusing work into a reduction level
/// (e.g. the engine's batched gradient fold) can size their launches.
inline constexpr std::size_t kReduceGroupSize = 256;

/// \brief Sums `n` doubles starting at `offset` in a device-resident
/// buffer via the parallel binary reduction scheme of the paper (Horn, GPU
/// Gems 2) and returns the scalar on the host. Issues O(log n) kernel
/// launches plus one 8-byte read-back, blocking on the final read. The
/// input buffer is NOT modified — the estimator retains per-point
/// contributions for sample maintenance after reducing them (paper
/// Section 5.4).
double ReduceSum(Device* device, const DeviceBuffer<double>& buffer,
                 std::size_t offset, std::size_t n);

/// \brief Segmented binary-tree reduction: `buffer` holds `num_segments`
/// contiguous segments of `segment_size` doubles each, starting at
/// `offset`. Writes the per-segment sums into `out` at
/// `out_offset + segment`, leaving them DEVICE-resident (no read-back).
/// Blocks until the sums are resident (enqueue + wait).
///
/// Every reduction level folds all segments in ONE launch, so the launch
/// count is O(log segment_size) independent of the segment count — the
/// batched-evaluation primitive behind the engine's multi-query hot paths
/// (vs O(num_segments * log segment_size) launches for per-segment
/// ReduceSum calls). Each segment is folded by exactly the same group
/// tree as a standalone `ReduceSum` over the same values, so the two are
/// bit-identical. The input buffer is not modified. `out` may not alias
/// `buffer`.
void ReduceSumSegments(Device* device, const DeviceBuffer<double>& buffer,
                       std::size_t offset, std::size_t segment_size,
                       std::size_t num_segments, DeviceBuffer<double>* out,
                       std::size_t out_offset = 0);

/// \brief Asynchronous `ReduceSumSegments`: enqueues all reduction levels
/// on `queue` and returns the last level's event without blocking — the
/// primitive behind the enqueued gradient pass the paper hides behind
/// query execution (Section 5.5). Internal scratch buffers are kept alive
/// by the enqueued commands themselves; `buffer` and `out` must outlive
/// the returned event (see the lifetime discipline in command_queue.h).
Event EnqueueReduceSumSegments(CommandQueue* queue,
                               const DeviceBuffer<double>& buffer,
                               std::size_t offset, std::size_t segment_size,
                               std::size_t num_segments,
                               DeviceBuffer<double>* out,
                               std::size_t out_offset = 0);

}  // namespace fkde

#endif  // FKDE_PARALLEL_DEVICE_H_
