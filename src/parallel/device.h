/// \file device.h
/// \brief OpenCL-style execution layer: devices, device-resident buffers,
/// kernel launches, and explicit host<->device transfers.
///
/// The paper runs its estimator through OpenCL on either a discrete GPU
/// (NVIDIA GTX-460) or a multi-core CPU. We reproduce that execution model
/// with two backends:
///
///  * **CPU backend** — kernels really execute on a thread pool; this is a
///    faithful reimplementation of the paper's "OpenCL on the host CPU"
///    configuration.
///  * **Simulated GPU backend** — kernels execute on the same thread pool
///    (so all results are real), but *time* is accounted by a calibrated
///    `DeviceProfile` cost model (per-launch latency, PCIe transfer latency
///    and bandwidth, compute throughput). This preserves the performance
///    *shape* of the paper's Figure 7 without requiring GPU hardware; the
///    substitution is documented in DESIGN.md §1.
///
/// Both backends meter every host<->device transfer in a `TransferLedger`,
/// which the evaluation uses to validate the paper's transfer-efficiency
/// claims (the sample stays device-resident; only query bounds, estimates,
/// feedback scalars, and replaced sample rows cross the bus).

#ifndef FKDE_PARALLEL_DEVICE_H_
#define FKDE_PARALLEL_DEVICE_H_

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common/logging.h"
#include "parallel/thread_pool.h"

namespace fkde {

/// \brief Cost-model parameters of an execution device.
///
/// Calibrated against the hardware of the paper's Section 6.4 testbed; see
/// `DeviceProfile::OpenClCpu()` and `DeviceProfile::SimulatedGtx460()`.
struct DeviceProfile {
  /// Human-readable device name.
  std::string name = "cpu";
  /// Fixed cost of scheduling one kernel, seconds. OpenCL runtimes impose
  /// tens of microseconds per enqueue; this produces the flat region of
  /// Figure 7 for small models.
  double launch_latency_s = 30e-6;
  /// Fixed cost of scheduling one host<->device transfer, seconds.
  double transfer_latency_s = 5e-6;
  /// Sustained transfer bandwidth, bytes/second (PCIe 2.0 x16 for the GPU).
  double transfer_bandwidth = 20e9;
  /// Sustained kernel throughput in work-units/second, where a work-unit is
  /// one `ops_per_item` unit reported at launch time (we use
  /// one sample-point-attribute as the unit for KDE kernels).
  double compute_throughput = 2.56e8;

  /// Profile matching the paper's quad-core Xeon E5620 running Intel's
  /// OpenCL SDK: ~32K-point 8D models evaluated in ~1 ms.
  static DeviceProfile OpenClCpu();

  /// Profile matching the paper's NVIDIA GTX-460: roughly 4x the CPU's
  /// kernel throughput, higher per-launch and per-transfer latency, and
  /// PCIe-limited transfers. ~128K-point 8D models evaluated in ~1 ms.
  static DeviceProfile SimulatedGtx460();
};

/// \brief Counters for all traffic and launches on a device.
struct TransferLedger {
  std::uint64_t bytes_to_device = 0;
  std::uint64_t bytes_to_host = 0;
  std::uint64_t transfers_to_device = 0;
  std::uint64_t transfers_to_host = 0;
  std::uint64_t kernel_launches = 0;

  std::uint64_t total_bytes() const { return bytes_to_device + bytes_to_host; }
};

template <typename T>
class DeviceBuffer;

/// \brief An execution device with device-resident memory.
///
/// All compute goes through `Launch`; all data movement goes through
/// `CopyToDevice`/`CopyToHost`. Host code must not touch a DeviceBuffer's
/// storage outside of a kernel functor — the transfer ledger is only
/// meaningful if this discipline is kept (enforced by convention and
/// code review, as in real OpenCL code).
class Device {
 public:
  explicit Device(DeviceProfile profile,
                  ThreadPool* pool = &ThreadPool::Global())
      : profile_(std::move(profile)), pool_(pool) {}

  const DeviceProfile& profile() const { return profile_; }

  /// Allocates an uninitialized device buffer of `n` elements.
  template <typename T>
  DeviceBuffer<T> CreateBuffer(std::size_t n);

  /// Copies `n` host elements into `dst` starting at element `offset`.
  template <typename T>
  void CopyToDevice(const T* host, std::size_t n, DeviceBuffer<T>* dst,
                    std::size_t offset = 0);

  /// Copies `n` device elements starting at `offset` out to `host`.
  template <typename T>
  void CopyToHost(const DeviceBuffer<T>& src, std::size_t offset,
                  std::size_t n, T* host);

  /// Enqueues a data-parallel kernel over `global_size` work items and
  /// blocks until completion. `ops_per_item` is the work-unit count per
  /// item used for modeled-time accounting. The functor receives a
  /// half-open index range [begin, end) (a "work-group" of items).
  void Launch(const char* kernel_name, std::size_t global_size,
              double ops_per_item,
              const std::function<void(std::size_t, std::size_t)>& body);

  /// Like `Launch`, but models the kernel as *overlapped* with host work:
  /// only the launch latency is charged to modeled time, not the compute.
  /// The paper (Section 5.5) hides the adaptive-gradient computation behind
  /// the database's query execution this way, which is why Adaptive's
  /// measurable overhead over Heuristic is a constant latency term.
  void LaunchOverlapped(
      const char* kernel_name, std::size_t global_size,
      const std::function<void(std::size_t, std::size_t)>& body);

  /// Accumulated cost-model time for all launches and transfers since the
  /// last `ResetModeledTime`. For the CPU profile this approximates real
  /// runtime; for the simulated GPU it *is* the reported runtime.
  double ModeledSeconds() const { return modeled_seconds_; }
  void ResetModeledTime() { modeled_seconds_ = 0.0; }

  const TransferLedger& ledger() const { return ledger_; }
  void ResetLedger() { ledger_ = TransferLedger(); }

 private:
  DeviceProfile profile_;
  ThreadPool* pool_;
  TransferLedger ledger_;
  double modeled_seconds_ = 0.0;
};

/// \brief Typed device-resident memory.
///
/// Mirrors an OpenCL buffer: created via `Device::CreateBuffer`, filled via
/// `Device::CopyToDevice`, and read back via `Device::CopyToHost`. Kernel
/// functors access storage via `device_data()`.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;

  std::size_t size() const { return storage_.size(); }
  bool empty() const { return storage_.empty(); }

  /// Raw storage pointer — for use inside kernel functors only.
  T* device_data() { return storage_.data(); }
  const T* device_data() const { return storage_.data(); }

 private:
  friend class Device;
  explicit DeviceBuffer(std::size_t n) : storage_(n) {}
  std::vector<T> storage_;
};

template <typename T>
DeviceBuffer<T> Device::CreateBuffer(std::size_t n) {
  return DeviceBuffer<T>(n);
}

template <typename T>
void Device::CopyToDevice(const T* host, std::size_t n, DeviceBuffer<T>* dst,
                          std::size_t offset) {
  FKDE_CHECK_MSG(offset + n <= dst->size(), "CopyToDevice out of bounds");
  if (n > 0) std::memcpy(dst->device_data() + offset, host, n * sizeof(T));
  ledger_.transfers_to_device += 1;
  ledger_.bytes_to_device += n * sizeof(T);
  modeled_seconds_ += profile_.transfer_latency_s +
                      static_cast<double>(n * sizeof(T)) /
                          profile_.transfer_bandwidth;
}

template <typename T>
void Device::CopyToHost(const DeviceBuffer<T>& src, std::size_t offset,
                        std::size_t n, T* host) {
  FKDE_CHECK_MSG(offset + n <= src.size(), "CopyToHost out of bounds");
  if (n > 0) std::memcpy(host, src.device_data() + offset, n * sizeof(T));
  ledger_.transfers_to_host += 1;
  ledger_.bytes_to_host += n * sizeof(T);
  modeled_seconds_ += profile_.transfer_latency_s +
                      static_cast<double>(n * sizeof(T)) /
                          profile_.transfer_bandwidth;
}

/// Work-group size of the binary-tree reductions, mirroring the OpenCL
/// implementation. Exposed so callers fusing work into a reduction level
/// (e.g. the engine's batched gradient fold) can size their launches.
inline constexpr std::size_t kReduceGroupSize = 256;

/// \brief Sums `n` doubles starting at `offset` in a device-resident
/// buffer via the parallel binary reduction scheme of the paper (Horn, GPU
/// Gems 2) and returns the scalar on the host. Issues O(log n) kernel
/// launches plus one 8-byte read-back. The input buffer is NOT modified —
/// the estimator retains per-point contributions for sample maintenance
/// after reducing them (paper Section 5.4). With `overlapped` the
/// reduction kernels are modeled as hidden behind host work (see
/// Device::LaunchOverlapped); the final read-back is always charged.
double ReduceSum(Device* device, const DeviceBuffer<double>& buffer,
                 std::size_t offset, std::size_t n, bool overlapped = false);

/// \brief Segmented binary-tree reduction: `buffer` holds `num_segments`
/// contiguous segments of `segment_size` doubles each, starting at
/// `offset`. Writes the per-segment sums into `out` at
/// `out_offset + segment`, leaving them DEVICE-resident (no read-back).
///
/// Every reduction level folds all segments in ONE launch, so the launch
/// count is O(log segment_size) independent of the segment count — the
/// batched-evaluation primitive behind the engine's multi-query hot paths
/// (vs O(num_segments * log segment_size) launches for per-segment
/// ReduceSum calls). Each segment is folded by exactly the same group
/// tree as a standalone `ReduceSum` over the same values, so the two are
/// bit-identical. The input buffer is not modified. `out` may not alias
/// `buffer`.
void ReduceSumSegments(Device* device, const DeviceBuffer<double>& buffer,
                       std::size_t offset, std::size_t segment_size,
                       std::size_t num_segments, DeviceBuffer<double>* out,
                       std::size_t out_offset = 0, bool overlapped = false);

}  // namespace fkde

#endif  // FKDE_PARALLEL_DEVICE_H_
