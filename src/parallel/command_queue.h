/// \file command_queue.h
/// \brief OpenCL-style asynchronous command queues and events.
///
/// The paper (Section 5.5) hides the adaptive-gradient and Karma
/// maintenance passes behind the database's query execution by submitting
/// them to an asynchronous OpenCL command queue and synchronizing on the
/// completion event only when the query feedback arrives. This header
/// reproduces that execution model:
///
///  * `CommandQueue` — an in-order queue of device commands. `Enqueue*`
///    calls return immediately; a dedicated dispatcher thread pops
///    commands and executes kernel bodies on the device's thread pool, so
///    enqueued work really does run concurrently with host code.
///  * `Event` — a handle to one enqueued command. `Wait()` blocks the
///    host until the command completes. Commands accept an event
///    wait-list, which orders them after commands from other queues
///    (same-queue ordering is implicit: queues are in-order).
///
/// ## Modeled time: the two-timeline rule
///
/// Modeled cost (the Figure 7 y-axis) is derived from the *dependency
/// graph* of enqueued commands, not from a per-call `overlapped` flag.
/// The device keeps two modeled clocks:
///
///  * the **host timeline** `H` advances by the submission cost of every
///    enqueue (`launch_latency_s` / `transfer_latency_s` — the driver
///    round trip the host always pays), by `Device::AdvanceHostTime`
///    (modeling concurrent work such as the database executing the
///    query), and by stalls;
///  * the **device timeline** `D` carries the compute/transfer durations:
///    a command starts at `max(D, H, wait-list ends)` and occupies the
///    device until `start + duration`.
///
/// `Event::Wait()` advances `H` to the command's modeled end; any gap is
/// charged as a stall. Enqueued work whose completion the host only
/// observes after enough `AdvanceHostTime` has passed therefore costs
/// nothing but its submission latency — overlap emerges from the graph,
/// exactly like the constant Adaptive-vs-Heuristic offset of Figure 7.
/// `Device::ModeledSeconds()` reports the host-timeline advance excluding
/// `AdvanceHostTime` (i.e. the estimator's own overhead).
///
/// All modeled bookkeeping happens at *enqueue* time under the device
/// mutex, so modeled times and the transfer ledger are deterministic and
/// independent of real thread interleaving; only the actual execution is
/// asynchronous.
///
/// ## Lifetime discipline
///
/// As in OpenCL, the host must keep every buffer and staging area named
/// by an enqueued command alive until the command completes (`Wait()`,
/// `Finish()`, or destruction of the queue, which drains it). Owners of
/// device buffers that receive enqueued commands must `Finish()` the
/// queue before the buffers are destroyed.
///
/// ## Declared access-sets
///
/// Every command may declare the device-buffer byte ranges it touches as
/// a list of `BufferAccess` records. Transfers declare theirs
/// automatically (the typed enqueue wrappers know buffer, offset, and
/// element count); kernels pass a span built with the `Reads`/`Writes`/
/// `ReadsWrites` helpers in device.h. When a `HazardChecker` (see
/// hazard_checker.h) is attached to the device, the declarations feed a
/// command-DAG race analysis; when none is attached they cost one branch
/// per enqueue. A kernel launched with an empty access-set is *opaque*:
/// it is assumed to potentially touch anything, which suppresses
/// use-before-initialization reports for buffers it may have produced
/// but forfeits race checking for the ranges it touches.

#ifndef FKDE_PARALLEL_COMMAND_QUEUE_H_
#define FKDE_PARALLEL_COMMAND_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

namespace fkde {

class Device;
class CommandQueue;
template <typename T>
class DeviceBuffer;

/// \brief How a command touches a declared buffer range.
enum class AccessMode : std::uint8_t { kRead, kWrite, kReadWrite };

/// \brief One declared buffer access of an enqueued command: the byte
/// range `[offset_bytes, offset_bytes + length_bytes)` of the registered
/// device buffer `buffer_id` (see `DeviceBuffer::buffer_id()`), touched
/// with `mode`. Built via the typed `Reads`/`Writes`/`ReadsWrites`
/// helpers in device.h rather than by hand.
struct BufferAccess {
  std::uint64_t buffer_id = 0;
  std::size_t offset_bytes = 0;
  std::size_t length_bytes = 0;
  AccessMode mode = AccessMode::kRead;
};

/// \brief Hazard-checking mode of a device (see hazard_checker.h).
///  * `kOff`      — no checker attached; enqueues pay one null-branch.
///  * `kDeferred` — record everything, report via `Validate()`.
///  * `kStrict`   — abort with a diagnostic at the first hazard.
enum class HazardMode : std::uint8_t { kOff, kDeferred, kStrict };

/// \brief What kind of command a DAG node is (diagnostics + readback
/// tracking in the hazard checker).
enum class CommandKind : std::uint8_t { kKernel, kCopyToDevice, kCopyToHost };

/// \brief Occupancy counters of one in-order queue (see
/// `CommandQueue::Stats`). `total_commands` and `depth_high_water` are
/// bumped at enqueue time under the queue mutex, so they are
/// deterministic; `dispatcher_wait_s` is real (wall-clock) time the
/// dispatcher thread spent parked with an empty queue — the physical
/// pipeline-starvation signal the streaming executor drives toward zero.
/// `DeviceGroup::AggregateQueueStats` folds these per-device: counts and
/// wait time sum, the high-water mark takes the max.
struct CommandQueueStats {
  std::uint64_t total_commands = 0;  ///< Commands ever enqueued.
  std::size_t depth_high_water = 0;  ///< Max pending-queue depth seen.
  std::size_t pending = 0;           ///< Enqueued, not yet dispatched.
  double dispatcher_wait_s = 0.0;    ///< Wall time the dispatcher idled.
};

namespace internal {

/// Shared completion state of one enqueued command. Everything except
/// `complete` is written once at enqueue time (before the state is
/// shared with the dispatcher); `complete` is the only cross-thread
/// field.
struct EventState {
  std::mutex mu;
  std::condition_variable cv;
  bool complete = false;
  double modeled_end_s = 0.0;  ///< Absolute device-timeline completion.
  Device* device = nullptr;
  std::uint64_t queue_id = 0;     ///< Owning queue (process-unique).
  std::uint64_t queue_index = 0;  ///< 1-based position within the queue.
  /// Vector clock over in-order queues: `{queue, index}` pairs, sorted by
  /// queue id; command u happens-before this command iff
  /// `clock[queue(u)] >= index(u)`. Filled only while a hazard checker is
  /// attached (empty otherwise).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> hazard_clock;

  void MarkComplete();
  /// Blocks until the command really finished, without touching the
  /// modeled clocks (used by the dispatcher for wait-list dependencies,
  /// which are already accounted in the modeled start time).
  void WaitReal();
};

}  // namespace internal

/// \brief Completion handle of one enqueued command.
///
/// A default-constructed Event is "null": already complete, modeled end
/// 0. Events are cheap shared handles and may be copied freely.
class Event {
 public:
  Event() = default;

  /// True when this handle refers to an enqueued command.
  bool valid() const { return state_ != nullptr; }

  /// True when the command has finished executing (non-blocking probe).
  bool complete() const;

  /// Blocks until the command completes, then advances the host modeled
  /// clock to the command's modeled end; any gap between the host clock
  /// and that end is charged as a host stall. No-op for a null event.
  void Wait() const;

  /// Modeled device-timeline completion time (absolute seconds since the
  /// device was created); 0 for a null event.
  double modeled_end_seconds() const;

 private:
  friend class CommandQueue;
  friend class HazardChecker;  // Reads the DAG metadata off state_.
  explicit Event(std::shared_ptr<internal::EventState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal::EventState> state_;
};

/// \brief In-order asynchronous command queue of one device.
///
/// Commands execute in enqueue order; `Enqueue*` never blocks on device
/// work (only on the modeled submission bookkeeping). One dispatcher
/// thread per queue pops commands, resolves their wait-lists, and runs
/// kernel bodies on the device's thread pool.
class CommandQueue {
 public:
  explicit CommandQueue(Device* device);
  /// `Finish()`es the queue (charging any remaining modeled stall to the
  /// host clock — destroying a queue with in-flight commands must not
  /// drop their modeled time), joins the dispatcher, and asserts the
  /// queue really drained.
  ~CommandQueue();

  CommandQueue(const CommandQueue&) = delete;
  CommandQueue& operator=(const CommandQueue&) = delete;

  Device* device() const { return device_; }

  /// Process-unique queue id (diagnostics; stable for the queue's life).
  std::uint64_t id() const { return id_; }

  /// Enqueues a data-parallel kernel over `global_size` work items and
  /// returns immediately. `ops_per_item` is the modeled work-unit count
  /// per item. The functor receives a half-open index range [begin, end)
  /// and runs on the thread pool once the command is dispatched.
  /// `accesses` declares the device-buffer byte ranges the kernel touches
  /// (see the access-set discipline in the header comment); an empty span
  /// marks the kernel opaque.
  Event EnqueueLaunch(const char* kernel_name, std::size_t global_size,
                      double ops_per_item,
                      std::function<void(std::size_t, std::size_t)> body,
                      std::span<const BufferAccess> accesses = {},
                      std::span<const Event> wait_list = {});

  /// Enqueues a host->device transfer of `n` elements into `dst` at
  /// element `offset`. `host` must stay valid until the command
  /// completes. Zero-length transfers complete immediately and are
  /// neither metered nor charged.
  template <typename T>
  Event EnqueueCopyToDevice(const T* host, std::size_t n,
                            DeviceBuffer<T>* dst, std::size_t offset = 0,
                            std::span<const Event> wait_list = {});

  /// Enqueues a device->host transfer of `n` elements starting at
  /// `offset` into `host`, which must stay valid (and unread) until the
  /// command completes. Zero-length transfers complete immediately and
  /// are neither metered nor charged.
  template <typename T>
  Event EnqueueCopyToHost(const DeviceBuffer<T>& src, std::size_t offset,
                          std::size_t n, T* host,
                          std::span<const Event> wait_list = {});

  /// Blocks until every command enqueued so far has completed, and
  /// advances the host modeled clock past the last of them.
  void Finish();

  /// Snapshot of the queue's occupancy counters (see CommandQueueStats).
  CommandQueueStats Stats() const;

 private:
  struct Command {
    std::function<void()> run;
    std::vector<Event> deps;
    std::shared_ptr<internal::EventState> done;
  };

  /// Largest modeled end among the wait-list events.
  static double MaxModeledEnd(std::span<const Event> wait_list);

  /// Type-erased transfer enqueue shared by both copy directions.
  /// `device_access` names the device-buffer side of the transfer (the
  /// host side is untracked staging memory).
  Event EnqueueCopyBytes(void* dst, const void* src, std::size_t bytes,
                         bool to_device, const BufferAccess& device_access,
                         std::span<const Event> wait_list);

  Event Push(std::function<void()> run, double modeled_end_s,
             CommandKind kind, const char* name,
             std::span<const BufferAccess> accesses,
             std::span<const Event> wait_list);

  void DispatchLoop();

  Device* device_;
  const std::uint64_t id_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Command> pending_;
  bool shutdown_ = false;
  Event last_;
  std::uint64_t next_index_ = 0;       ///< Guarded by mu_.
  std::size_t depth_high_water_ = 0;   ///< Guarded by mu_.
  double dispatcher_wait_s_ = 0.0;     ///< Guarded by mu_.
  std::thread dispatcher_;
};

}  // namespace fkde

#endif  // FKDE_PARALLEL_COMMAND_QUEUE_H_
