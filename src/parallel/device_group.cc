#include "parallel/device_group.h"

#include <algorithm>

#include "common/logging.h"

namespace fkde {

DeviceGroup::DeviceGroup(const std::vector<DeviceProfile>& profiles,
                         DeviceGroupOptions options, ThreadPool* pool)
    : options_(std::move(options)) {
  FKDE_CHECK_MSG(!profiles.empty(), "DeviceGroup needs at least one device");
  FKDE_CHECK_MSG(options_.initial_weights.empty() ||
                     options_.initial_weights.size() == profiles.size(),
                 "initial_weights must match the device count");
  devices_.reserve(profiles.size());
  for (const DeviceProfile& profile : profiles) {
    devices_.push_back(std::make_unique<Device>(profile, pool));
  }
  // One shared checker for the whole group: cross-device wait-list edges
  // only resolve against a single command DAG. An explicit option wins;
  // otherwise, if HAZARD_STRICT attached per-device strict checkers at
  // construction, promote them to one shared strict checker.
  HazardMode mode = options_.hazard_mode;
  if (mode == HazardMode::kOff && devices_.front()->hazard_checker()) {
    mode = devices_.front()->hazard_checker()->mode();
  }
  if (mode != HazardMode::kOff) {
    hazard_checker_ = HazardChecker::Create(mode);
    for (const auto& device : devices_) {
      device->AttachHazardChecker(hazard_checker_);
    }
  }
}

std::vector<double> DeviceGroup::InitialWeights() const {
  std::vector<double> weights = options_.initial_weights;
  if (weights.empty()) {
    weights.reserve(devices_.size());
    for (const auto& device : devices_) {
      weights.push_back(device->profile().compute_throughput);
    }
  }
  double total = 0.0;
  for (double w : weights) {
    FKDE_CHECK_MSG(w > 0.0, "shard weights must be positive");
    total += w;
  }
  for (double& w : weights) w /= total;
  return weights;
}

double DeviceGroup::MaxModeledSeconds() const {
  double max_s = 0.0;
  for (const auto& device : devices_) {
    max_s = std::max(max_s, device->ModeledSeconds());
  }
  return max_s;
}

double DeviceGroup::TotalHostStallSeconds() const {
  double total = 0.0;
  for (const auto& device : devices_) total += device->HostStallSeconds();
  return total;
}

TransferLedger DeviceGroup::AggregateLedger() const {
  TransferLedger total;
  for (const auto& device : devices_) {
    const TransferLedger& ledger = device->ledger();
    total.bytes_to_device += ledger.bytes_to_device;
    total.bytes_to_host += ledger.bytes_to_host;
    total.transfers_to_device += ledger.transfers_to_device;
    total.transfers_to_host += ledger.transfers_to_host;
    total.kernel_launches += ledger.kernel_launches;
  }
  return total;
}

BufferPoolStats DeviceGroup::AggregateScratchStats() const {
  BufferPoolStats total;
  for (const auto& device : devices_) {
    const BufferPoolStats stats = device->scratch_pool_stats();
    total.hits += stats.hits;
    total.misses += stats.misses;
    total.releases += stats.releases;
    total.outstanding += stats.outstanding;
    total.pooled_bytes += stats.pooled_bytes;
  }
  return total;
}

void DeviceGroup::TrimScratchPools() {
  for (const auto& device : devices_) device->TrimScratchPool();
}

CommandQueueStats DeviceGroup::AggregateQueueStats() const {
  CommandQueueStats total;
  for (const auto& device : devices_) {
    const CommandQueueStats stats = device->queue_stats();
    total.total_commands += stats.total_commands;
    total.dispatcher_wait_s += stats.dispatcher_wait_s;
    total.depth_high_water =
        std::max(total.depth_high_water, stats.depth_high_water);
    total.pending = std::max(total.pending, stats.pending);
  }
  return total;
}

void DeviceGroup::AdvanceHostTime(double seconds) {
  for (const auto& device : devices_) device->AdvanceHostTime(seconds);
}

void DeviceGroup::ResetModeledTime() {
  for (const auto& device : devices_) device->ResetModeledTime();
}

void DeviceGroup::ResetLedger() {
  for (const auto& device : devices_) device->ResetLedger();
}

Result<std::vector<DeviceProfile>> ParseDeviceTopology(
    const std::string& spec) {
  std::vector<DeviceProfile> profiles;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find('+', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string name = spec.substr(begin, end - begin);
    if (name == "cpu") {
      profiles.push_back(DeviceProfile::OpenClCpu());
    } else if (name == "cpu-simd") {
      profiles.push_back(DeviceProfile::SimdCpu());
    } else if (name == "gpu") {
      profiles.push_back(DeviceProfile::SimulatedGtx460());
    } else {
      return Status::InvalidArgument("unknown device in topology '" + spec +
                                     "': '" + name +
                                     "' (want cpu|cpu-simd|gpu)");
    }
    begin = end + 1;
  }
  return profiles;
}

}  // namespace fkde
