/// \file simd.h
/// \brief Kernel-backend selection: scalar vs explicitly vectorized CPU
/// kernels, double vs mixed-precision float lane math.
///
/// Every KDE hot path bottoms out in a fused per-point loop (contribution,
/// contribution+gradient, moments). The *backend* decides how that loop
/// executes on the host threads that back a `Device`:
///
///  * `kScalar` — the seed's per-point loop over `kernel::CdfDiff` and
///    friends. Bit-identical to the pre-backend engine.
///  * `kSimd`   — an explicitly vectorized AVX2 path (8-wide float /
///    4-wide double lanes) reading a structure-of-arrays view of the
///    sample so lanes load contiguous per-dimension strips.
///
/// The *precision* decides the lane type of the SIMD path (and the math
/// used by the scalar fallback when float is forced):
///
///  * `kDouble` — double lane math, libm `erf`/`exp`. Results stay within
///    1e-12 of the scalar backend (pinned by kernel_backend_test).
///  * `kFloat`  — float storage and float lane math with polynomial
///    `erf`/`exp` approximations (see kde/kernels.h for the documented
///    error bounds); accumulation into the contribution/partial buffers
///    stays double, so the segmented reductions are unchanged.
///
/// Selection is **per device** through `DeviceProfile::kernel_backend` /
/// `kernel_precision`, resolved at engine construction with runtime CPU
/// dispatch: requesting `kSimd` on a machine without AVX2 quietly falls
/// back to `kScalar`. The environment variables `FKDE_KERNEL_BACKEND`
/// (`scalar`|`simd`|`auto`) and `FKDE_KERNEL_PRECISION`
/// (`double`|`float`) override every profile — the CI scalar-fallback leg
/// sets `FKDE_KERNEL_BACKEND=scalar` and reruns the equivalence suites.

#ifndef FKDE_PARALLEL_SIMD_H_
#define FKDE_PARALLEL_SIMD_H_

#include <string>

#include "common/status.h"

namespace fkde {

/// How the fused per-point kernels execute on the host threads.
enum class KernelBackend {
  kScalar,  ///< Seed-identical per-point loops.
  kSimd,    ///< AVX2 lanes over the SoA sample view (falls back to
            ///< kScalar when the CPU lacks AVX2).
};

/// Lane precision of the fused kernels (storage is float either way; the
/// reductions always accumulate in double).
enum class KernelPrecision {
  kDouble,  ///< libm erf/exp, 1e-12-equivalent to scalar.
  kFloat,   ///< Polynomial erf/exp, documented & test-pinned error bound.
};

const char* KernelBackendName(KernelBackend backend);
const char* KernelPrecisionName(KernelPrecision precision);

/// Parses "scalar"/"simd" (case-insensitive).
Result<KernelBackend> ParseKernelBackendName(const std::string& name);
/// Parses "double"/"float" (case-insensitive).
Result<KernelPrecision> ParseKernelPrecisionName(const std::string& name);

/// True when this process can execute the AVX2 kernel path (compile-time
/// x86-64 support and runtime CPUID check, cached after the first call).
bool CpuSupportsSimd();

/// Resolves the backend a device profile requested into the backend that
/// will actually run: applies the `FKDE_KERNEL_BACKEND` environment
/// override (`scalar` forces the fallback everywhere, `simd` forces the
/// vector path where supported, `auto`/unset respects `requested`), then
/// falls back to `kScalar` when the CPU lacks AVX2.
KernelBackend ResolveKernelBackend(KernelBackend requested);

/// Resolves the precision: `FKDE_KERNEL_PRECISION` overrides `requested`
/// when set to `double` or `float`.
KernelPrecision ResolveKernelPrecision(KernelPrecision requested);

}  // namespace fkde

#endif  // FKDE_PARALLEL_SIMD_H_
