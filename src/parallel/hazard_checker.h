/// \file hazard_checker.h
/// \brief Static/dynamic hazard analysis of the device command DAG.
///
/// The estimator is correct only because its command stream keeps the
/// sample, gradient accumulators, and Karma bitmaps device-resident with
/// carefully ordered launches (paper §4/§5). Three async layers now
/// cooperate to preserve that ordering — in-order `CommandQueue`s,
/// cross-queue `Event` wait-lists, and the pooled scratch buffers whose
/// lifetime is carried by enqueued kernel bodies. This checker turns the
/// ordering invariants from "enforced by tests and TSan" into a proof
/// obligation on every run:
///
///  * every command declares its buffer access-sets at submission
///    (`BufferAccess` in command_queue.h; transfers auto-declare);
///  * the checker records the full command DAG — implicit in-order queue
///    edges plus explicit wait-list edges — as a vector clock per
///    command over the in-order queues (command u happens-before v iff
///    `clock(v)[queue(u)] >= index(u)`);
///  * each buffer keeps a byte-interval map whose intervals carry the
///    latest writer and readers *per queue* (on an in-order queue the
///    latest access subsumes all earlier ones by transitivity), so every
///    new access is checked against a bounded frontier, not a log.
///
/// Reported hazard classes:
///
///  * RAW / WAR / WAW between commands with no ordering path;
///  * use-after-free: an access declared on a released buffer, or a
///    buffer released while a recorded in-flight command references it;
///  * use-before-initialization: a read of bytes no prior command wrote
///    (suppressed when an *opaque* kernel — one launched with no declared
///    access-set — happens-before the reader, since it may have produced
///    the data);
///  * leaked scratch: a pooled scratch buffer parked back into the pool
///    while an in-flight command still references it;
///  * unwaited readback: a device→host copy whose completion the host
///    never observed via `Event::Wait()`/`Finish()` before `Validate()` —
///    the host may read torn staging memory.
///
/// Modes: `kStrict` aborts with a diagnostic (kernel names, queue ids,
/// the two unordered commands) at the first hazard; `kDeferred`
/// accumulates `HazardReport`s for `Validate()`. Attachment is per
/// device (`Device::EnableHazardChecking`) or shared across a
/// `DeviceGroup` so cross-device wait-list edges resolve; the
/// `HAZARD_STRICT=1` environment toggle attaches a strict checker to
/// every subsequently created device. With no checker attached the cost
/// is one null-pointer branch per enqueue.

#ifndef FKDE_PARALLEL_HAZARD_CHECKER_H_
#define FKDE_PARALLEL_HAZARD_CHECKER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "parallel/command_queue.h"

namespace fkde {

class HazardChecker;

namespace internal {

/// \brief Process-wide registry of live device buffers.
///
/// Every `DeviceBuffer` allocation registers here and receives a
/// monotone, never-reused id; releasing (destruction, or move-assignment
/// over an existing allocation) erases it and notifies attached
/// checkers. The monotone ids let the checker distinguish "freed" from
/// "never existed" and make use-after-free detection exact even after
/// the storage is recycled by the allocator.
class BufferRegistry {
 public:
  static BufferRegistry& Global();

  /// Registers a new allocation of `bytes` bytes; returns its id (>0).
  std::uint64_t Register(std::size_t bytes);

  /// Releases `id` and notifies observers (outside the registry lock).
  void Release(std::uint64_t id);

  /// True (and `*bytes` set, if non-null) when `id` is a live buffer.
  bool Lookup(std::uint64_t id, std::size_t* bytes) const;

  /// Ids in [1, watermark) have been allocated at some point.
  std::uint64_t watermark() const;

  void AddObserver(std::weak_ptr<HazardChecker> observer);

 private:
  mutable std::mutex mu_;
  std::uint64_t next_id_ = 1;
  std::unordered_map<std::uint64_t, std::size_t> alive_;
  std::vector<std::weak_ptr<HazardChecker>> observers_;
};

}  // namespace internal

/// \brief Classes of hazards the checker reports.
enum class HazardKind : std::uint8_t {
  kRaw,              ///< Read not ordered after a write it observes.
  kWar,              ///< Write not ordered after a read of the range.
  kWaw,              ///< Two unordered writes to overlapping bytes.
  kUseAfterFree,     ///< Access to a released buffer, or release under
                     ///< an in-flight command.
  kUseBeforeInit,    ///< Read of bytes no prior command initialized.
  kLeakedScratch,    ///< Scratch parked while a command references it.
  kUnwaitedReadback, ///< Device→host copy never waited before Validate.
};

const char* HazardKindName(HazardKind kind);

/// \brief One detected hazard with an actionable diagnostic.
struct HazardReport {
  HazardKind kind = HazardKind::kRaw;
  std::uint64_t buffer_id = 0;  ///< 0 when not buffer-specific.
  /// Human-readable diagnostic: the hazard class, buffer id and byte
  /// range, and for races the two unordered commands (kernel/transfer
  /// name, queue id, queue index each).
  std::string message;
};

/// \brief Records the command DAG plus declared access-sets and detects
/// hazards eagerly. Thread-safe; one instance may be shared by all
/// devices of a group. Create via `Create` (registers with the global
/// buffer registry).
class HazardChecker : public std::enable_shared_from_this<HazardChecker> {
 public:
  static std::shared_ptr<HazardChecker> Create(HazardMode mode);

  HazardChecker(const HazardChecker&) = delete;
  HazardChecker& operator=(const HazardChecker&) = delete;

  HazardMode mode() const { return mode_; }

  /// Records one enqueued command: merges its happens-before clock from
  /// the queue tail and wait-list, stores it into `state->hazard_clock`,
  /// and checks every declared access against the buffer frontiers.
  /// Called by `CommandQueue::Push` under the queue lock.
  void RecordCommand(const std::shared_ptr<internal::EventState>& state,
                     CommandKind kind, const char* name,
                     std::span<const BufferAccess> accesses,
                     std::span<const Event> wait_list);

  /// The host observed this command's completion (`Event::Wait`); every
  /// command that happens-before it is now host-visible too.
  void OnEventWaited(const internal::EventState& state);

  /// Registry callback: `id` was released. Reports use-after-free if a
  /// recorded in-flight command still references it.
  void OnBufferReleased(std::uint64_t id);

  /// A pooled scratch buffer was parked back into the pool. Reports
  /// leaked scratch if a recorded in-flight command still references it.
  void OnScratchParked(std::uint64_t id);

  /// A parked scratch buffer was re-acquired: its contents are stale
  /// again, so its initialized-range set resets.
  void OnScratchReused(std::uint64_t id);

  /// Returns every accumulated report plus liveness findings computed
  /// now (currently: unwaited readbacks). Deferred mode only — strict
  /// mode already aborted at the first hazard.
  std::vector<HazardReport> Validate();

  /// Accumulated reports so far, without the liveness pass.
  std::vector<HazardReport> reports() const;

 private:
  explicit HazardChecker(HazardMode mode) : mode_(mode) {}

  /// One recorded access of a command to a buffer interval.
  struct CommandRef {
    std::uint64_t queue_id = 0;
    std::uint64_t index = 0;
    std::string name;  ///< Kernel or transfer name (diagnostics).
    /// Completion probe for free/park checks.
    std::shared_ptr<internal::EventState> state;
  };

  using Clock = std::vector<std::pair<std::uint64_t, std::uint64_t>>;
  /// Latest access per queue; bounded by the number of queues.
  using Frontier = std::vector<std::pair<std::uint64_t, CommandRef>>;

  /// Byte interval [begin, end) of a buffer with its access frontiers.
  struct Interval {
    std::size_t begin = 0;
    std::size_t end = 0;
    Frontier writers;
    Frontier readers;
  };

  struct BufferState {
    std::vector<Interval> intervals;  ///< Sorted, disjoint.
    /// Merged, sorted byte ranges some prior command wrote.
    std::vector<std::pair<std::size_t, std::size_t>> init;
  };

  static void MergeClock(Clock* clock, std::uint64_t queue,
                         std::uint64_t index);
  static std::uint64_t ClockAt(const Clock& clock, std::uint64_t queue);
  static bool HappensBefore(const CommandRef& ref, const Clock& clock);
  static bool SameCommands(const Frontier& x, const Frontier& y);

  /// Splits/creates intervals so [a, b) is covered exactly; returns the
  /// index range of the covering intervals.
  static std::pair<std::size_t, std::size_t> EnsureIntervals(
      std::vector<Interval>* intervals, std::size_t a, std::size_t b);

  /// Merges adjacent intervals in [lo, hi] with identical frontiers.
  static void CoalesceIntervalsLocked(std::vector<Interval>* intervals,
                                      std::size_t lo, std::size_t hi);

  void AddReportLocked(HazardKind kind, std::uint64_t buffer_id,
                       std::string message);
  void CheckAccessLocked(const BufferAccess& access, const Clock& clock,
                         const CommandRef& ref);
  void ReportInFlightLocked(std::uint64_t id, HazardKind kind,
                            const char* what);
  /// True when an opaque kernel happens-before `clock`.
  bool OpaqueCoversLocked(const Clock& clock) const;
  static std::string DescribeRef(const CommandRef& ref);

  const HazardMode mode_;

  mutable std::mutex mu_;
  std::map<std::uint64_t, Clock> queue_tails_;
  /// Earliest opaque (no declared access-set) kernel per queue.
  std::map<std::uint64_t, std::uint64_t> opaque_min_index_;
  std::unordered_map<std::uint64_t, BufferState> buffers_;
  /// Device→host copies not yet covered by `waited_frontier_`.
  std::vector<CommandRef> readbacks_;
  /// Per-queue index up to which the host observed completion.
  std::map<std::uint64_t, std::uint64_t> waited_frontier_;
  std::vector<HazardReport> reports_;
};

}  // namespace fkde

#endif  // FKDE_PARALLEL_HAZARD_CHECKER_H_
