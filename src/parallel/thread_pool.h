/// \file thread_pool.h
/// \brief Fixed-size thread pool with a blocking parallel-for primitive.
///
/// This is the execution engine behind the `Device` abstraction
/// (see device.h). Kernels are data-parallel loops, so a chunked
/// parallel-for is the only primitive we need.
///
/// Dispatch is shared-state rather than task-queue based: a `ParallelFor`
/// publishes ONE job object and wakes the workers; workers (and the
/// caller, which participates) claim chunks through an atomic cursor and
/// the last finished chunk releases the completion latch. Large launches
/// therefore pay one small allocation per dispatch instead of a
/// heap-allocated `std::function` plus a mutex round-trip per chunk.

#ifndef FKDE_PARALLEL_THREAD_POOL_H_
#define FKDE_PARALLEL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace fkde {

/// \brief Fixed-size pool of worker threads.
///
/// Thread-safe for task submission from multiple threads;
/// `ParallelFor` blocks the calling thread until all chunks finish.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (0 = hardware concurrency).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Runs `fn(begin, end)` over [0, n) split into chunks of at least
  /// `grain` elements, in parallel, and waits for completion. The caller
  /// participates in chunk execution instead of idling.
  /// Small ranges run inline on the caller to avoid scheduling overhead.
  void ParallelFor(std::size_t n, std::size_t grain,
                   const std::function<void(std::size_t, std::size_t)>& fn);

  /// Process-wide shared pool (constructed on first use).
  static ThreadPool& Global();

 private:
  /// Shared state of one ParallelFor dispatch. Workers claim chunk
  /// indices via `next`; the worker that completes the final chunk
  /// publishes `done` under `done_mu` (never before — see RunChunks).
  struct Job {
    Job(const std::function<void(std::size_t, std::size_t)>& body,
        std::size_t total, std::size_t chunk_size, std::size_t chunks)
        : fn(&body), n(total), chunk(chunk_size), num_chunks(chunks),
          unfinished(chunks) {}

    const std::function<void(std::size_t, std::size_t)>* fn;
    std::size_t n;
    std::size_t chunk;
    std::size_t num_chunks;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> unfinished;
    std::mutex done_mu;
    std::condition_variable done_cv;
    bool done = false;

    /// Claims and runs chunks until the cursor is exhausted.
    void RunChunks();
  };

  void WorkerLoop();

  std::vector<std::thread> workers_;
  /// Pending job references (shared_ptr copies, one per woken worker —
  /// NOT one entry per chunk). Stale references to exhausted jobs are
  /// dropped immediately by RunChunks.
  std::deque<std::shared_ptr<Job>> jobs_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
};

}  // namespace fkde

#endif  // FKDE_PARALLEL_THREAD_POOL_H_
