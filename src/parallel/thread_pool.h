/// \file thread_pool.h
/// \brief Fixed-size thread pool with a blocking parallel-for primitive.
///
/// This is the execution engine behind the `Device` abstraction
/// (see device.h). Kernels are data-parallel loops, so a chunked
/// parallel-for is the only primitive we need.

#ifndef FKDE_PARALLEL_THREAD_POOL_H_
#define FKDE_PARALLEL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fkde {

/// \brief Fixed-size pool of worker threads.
///
/// Thread-safe for task submission from multiple threads;
/// `ParallelFor` blocks the calling thread until all chunks finish.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (0 = hardware concurrency).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Runs `fn(begin, end)` over [0, n) split into chunks of at least
  /// `grain` elements, in parallel, and waits for completion.
  /// Small ranges run inline on the caller to avoid scheduling overhead.
  void ParallelFor(std::size_t n, std::size_t grain,
                   const std::function<void(std::size_t, std::size_t)>& fn);

  /// Process-wide shared pool (constructed on first use).
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
};

}  // namespace fkde

#endif  // FKDE_PARALLEL_THREAD_POOL_H_
