#include "parallel/simd.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <mutex>

namespace fkde {

namespace {

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// Reads an environment variable once per process; kernels resolve their
/// backend on every engine construction, and mid-run environment flips
/// would make the equivalence tests racy.
const char* CachedEnv(const char* name, std::string* storage,
                      std::once_flag* flag) {
  std::call_once(*flag, [&] {
    const char* v = std::getenv(name);
    if (v != nullptr) *storage = v;
  });
  return storage->empty() ? nullptr : storage->c_str();
}

const char* BackendEnv() {
  static std::string storage;
  static std::once_flag flag;
  return CachedEnv("FKDE_KERNEL_BACKEND", &storage, &flag);
}

const char* PrecisionEnv() {
  static std::string storage;
  static std::once_flag flag;
  return CachedEnv("FKDE_KERNEL_PRECISION", &storage, &flag);
}

}  // namespace

const char* KernelBackendName(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return "scalar";
    case KernelBackend::kSimd:
      return "simd";
  }
  return "unknown";
}

const char* KernelPrecisionName(KernelPrecision precision) {
  switch (precision) {
    case KernelPrecision::kDouble:
      return "double";
    case KernelPrecision::kFloat:
      return "float";
  }
  return "unknown";
}

Result<KernelBackend> ParseKernelBackendName(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "scalar") return KernelBackend::kScalar;
  if (lower == "simd") return KernelBackend::kSimd;
  return Status::InvalidArgument("unknown kernel backend: " + name +
                                 " (expected scalar|simd)");
}

Result<KernelPrecision> ParseKernelPrecisionName(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "double" || lower == "f64") return KernelPrecision::kDouble;
  if (lower == "float" || lower == "f32") return KernelPrecision::kFloat;
  return Status::InvalidArgument("unknown kernel precision: " + name +
                                 " (expected double|float)");
}

bool CpuSupportsSimd() {
#if defined(__x86_64__) || defined(_M_X64)
  // __builtin_cpu_supports caches CPUID internally; wrap it anyway so the
  // answer is a single load after first use.
  static const bool supported = __builtin_cpu_supports("avx2") != 0;
  return supported;
#else
  return false;
#endif
}

KernelBackend ResolveKernelBackend(KernelBackend requested) {
  if (const char* env = BackendEnv()) {
    const std::string lower = ToLower(env);
    if (lower == "scalar") return KernelBackend::kScalar;
    if (lower == "simd") {
      requested = KernelBackend::kSimd;
    }
    // "auto" (or anything unrecognized) keeps the profile's request.
  }
  if (requested == KernelBackend::kSimd && !CpuSupportsSimd()) {
    return KernelBackend::kScalar;
  }
  return requested;
}

KernelPrecision ResolveKernelPrecision(KernelPrecision requested) {
  if (const char* env = PrecisionEnv()) {
    const std::string lower = ToLower(env);
    if (lower == "double" || lower == "f64") return KernelPrecision::kDouble;
    if (lower == "float" || lower == "f32") return KernelPrecision::kFloat;
  }
  return requested;
}

}  // namespace fkde
