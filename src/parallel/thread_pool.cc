#include "parallel/thread_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace fkde {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (shutdown_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t max_chunks = num_threads() * 4;
  std::size_t num_chunks = (n + grain - 1) / grain;
  num_chunks = std::min(num_chunks, max_chunks);
  if (num_chunks <= 1) {
    fn(0, n);
    return;
  }
  const std::size_t chunk = (n + num_chunks - 1) / num_chunks;

  std::atomic<std::size_t> remaining{num_chunks};
  std::mutex done_mu;
  std::condition_variable done_cv;
  // Completion must be signalled THROUGH the mutex: if the waiter's
  // predicate read the atomic directly, it could observe zero, return,
  // and destroy these stack objects while the final worker is still
  // entering the critical section — a use-after-free on the mutex. With
  // the flag written under the lock, the waiter can only return after
  // the last worker has fully left its critical section.
  bool all_done = false;

  {
    std::unique_lock<std::mutex> lock(mu_);
    FKDE_CHECK_MSG(!shutdown_, "ParallelFor on a shut-down pool");
    for (std::size_t c = 0; c < num_chunks; ++c) {
      const std::size_t begin = c * chunk;
      const std::size_t end = std::min(begin + chunk, n);
      tasks_.push([&, begin, end] {
        fn(begin, end);
        if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> done_lock(done_mu);
          all_done = true;
          done_cv.notify_one();
        }
      });
    }
  }
  cv_.notify_all();

  std::unique_lock<std::mutex> done_lock(done_mu);
  done_cv.wait(done_lock, [&] { return all_done; });
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

}  // namespace fkde
