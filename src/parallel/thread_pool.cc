#include "parallel/thread_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace fkde {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Job::RunChunks() {
  for (;;) {
    const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
    if (c >= num_chunks) return;
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(begin + chunk, n);
    (*fn)(begin, end);
    // Completion must be signalled THROUGH the mutex: if the waiter's
    // predicate read the atomic directly, it could observe zero, return,
    // and destroy the caller's stack state while the final worker is
    // still entering the critical section. With the flag written under
    // the lock, the waiter can only return after the last worker has
    // fully left its critical section (the Job itself is shared_ptr-kept
    // alive for any stragglers still spinning on the cursor).
    if (unfinished.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> done_lock(done_mu);
      done = true;
      done_cv.notify_one();
    }
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !jobs_.empty(); });
      if (jobs_.empty()) {
        if (shutdown_) return;
        continue;
      }
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    job->RunChunks();
  }
}

void ThreadPool::ParallelFor(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t max_chunks = num_threads() * 4;
  std::size_t num_chunks = (n + grain - 1) / grain;
  num_chunks = std::min(num_chunks, max_chunks);
  if (num_chunks <= 1) {
    fn(0, n);
    return;
  }
  const std::size_t chunk = (n + num_chunks - 1) / num_chunks;

  auto job = std::make_shared<Job>(fn, n, chunk, num_chunks);
  // One queue entry per worker that could usefully help (the caller
  // claims chunks too) — not one per chunk. Each entry is just a
  // shared_ptr copy; the chunk fan-out happens lock-free in RunChunks.
  const std::size_t helpers = std::min(num_chunks - 1, num_threads());
  {
    std::unique_lock<std::mutex> lock(mu_);
    FKDE_CHECK_MSG(!shutdown_, "ParallelFor on a shut-down pool");
    for (std::size_t i = 0; i < helpers; ++i) jobs_.push_back(job);
  }
  if (helpers == 1) {
    cv_.notify_one();
  } else {
    cv_.notify_all();
  }

  job->RunChunks();

  std::unique_lock<std::mutex> done_lock(job->done_mu);
  job->done_cv.wait(done_lock, [&job] { return job->done; });
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

}  // namespace fkde
