#include "parallel/command_queue.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <utility>

#include "parallel/device.h"
#include "parallel/hazard_checker.h"

namespace fkde {

namespace internal {

void EventState::MarkComplete() {
  {
    std::lock_guard<std::mutex> lock(mu);
    complete = true;
  }
  cv.notify_all();
}

void EventState::WaitReal() {
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [this] { return complete; });
}

}  // namespace internal

bool Event::complete() const {
  if (!state_) return true;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->complete;
}

void Event::Wait() const {
  if (!state_) return;
  state_->WaitReal();
  state_->device->SyncHostTo(state_->modeled_end_s);
  if (HazardChecker* checker = state_->device->hazard_checker()) {
    checker->OnEventWaited(*state_);
  }
}

double Event::modeled_end_seconds() const {
  return state_ ? state_->modeled_end_s : 0.0;
}

namespace {

std::uint64_t NextQueueId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

CommandQueue::CommandQueue(Device* device)
    : device_(device), id_(NextQueueId()) {
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

CommandQueue::~CommandQueue() {
  // Destroying a queue with in-flight commands must not drop their
  // modeled time: Finish() stalls the host clock to the last command's
  // modeled end before the dispatcher is joined.
  Finish();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  dispatcher_.join();
  FKDE_CHECK_MSG(pending_.empty(),
                 "command queue destroyed without draining");
}

double CommandQueue::MaxModeledEnd(std::span<const Event> wait_list) {
  double end = 0.0;
  for (const Event& e : wait_list) {
    end = std::max(end, e.modeled_end_seconds());
  }
  return end;
}

Event CommandQueue::EnqueueLaunch(
    const char* kernel_name, std::size_t global_size, double ops_per_item,
    std::function<void(std::size_t, std::size_t)> body,
    std::span<const BufferAccess> accesses,
    std::span<const Event> wait_list) {
  const double end = device_->BookLaunch(global_size, ops_per_item,
                                         MaxModeledEnd(wait_list));
  ThreadPool* pool = device_->pool();
  auto run = [pool, global_size, body = std::move(body)] {
    if (global_size == 0) return;
    // Grain keeps per-chunk scheduling cost negligible relative to work.
    pool->ParallelFor(global_size, 1024, body);
  };
  return Push(std::move(run), end, CommandKind::kKernel, kernel_name,
              accesses, wait_list);
}

Event CommandQueue::EnqueueCopyBytes(void* dst, const void* src,
                                     std::size_t bytes, bool to_device,
                                     const BufferAccess& device_access,
                                     std::span<const Event> wait_list) {
  const double end =
      device_->BookTransfer(bytes, to_device, MaxModeledEnd(wait_list));
  auto run = [dst, src, bytes] { std::memcpy(dst, src, bytes); };
  return Push(std::move(run), end,
              to_device ? CommandKind::kCopyToDevice
                        : CommandKind::kCopyToHost,
              to_device ? "copy_to_device" : "copy_to_host",
              std::span<const BufferAccess>(&device_access, 1), wait_list);
}

Event CommandQueue::Push(std::function<void()> run, double modeled_end_s,
                         CommandKind kind, const char* name,
                         std::span<const BufferAccess> accesses,
                         std::span<const Event> wait_list) {
  auto state = std::make_shared<internal::EventState>();
  state->modeled_end_s = modeled_end_s;
  state->device = device_;
  state->queue_id = id_;
  Command command;
  command.run = std::move(run);
  for (const Event& e : wait_list) {
    if (e.valid()) command.deps.push_back(e);
  }
  command.done = state;
  Event event(std::move(state));
  {
    std::lock_guard<std::mutex> lock(mu_);
    command.done->queue_index = ++next_index_;
    // Record before the dispatcher can see the command: the checker
    // writes the happens-before clock into the (not yet shared) state.
    if (HazardChecker* checker = device_->hazard_checker()) {
      checker->RecordCommand(command.done, kind, name, accesses, wait_list);
    }
    pending_.push_back(std::move(command));
    depth_high_water_ = std::max(depth_high_water_, pending_.size());
    last_ = event;
  }
  cv_.notify_one();
  return event;
}

void CommandQueue::Finish() {
  Event last;
  {
    std::lock_guard<std::mutex> lock(mu_);
    last = last_;
  }
  last.Wait();
}

CommandQueueStats CommandQueue::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CommandQueueStats stats;
  stats.total_commands = next_index_;
  stats.depth_high_water = depth_high_water_;
  stats.pending = pending_.size();
  stats.dispatcher_wait_s = dispatcher_wait_s_;
  return stats;
}

void CommandQueue::DispatchLoop() {
  for (;;) {
    Command command;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!shutdown_ && pending_.empty()) {
        // Starvation accounting: time the dispatcher sits with nothing to
        // run. mu_ is released inside the wait, so host enqueues proceed.
        const auto idle_from = std::chrono::steady_clock::now();
        cv_.wait(lock, [this] { return shutdown_ || !pending_.empty(); });
        dispatcher_wait_s_ +=
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          idle_from)
                .count();
      }
      if (pending_.empty()) return;  // Shut down and fully drained.
      command = std::move(pending_.front());
      pending_.pop_front();
    }
    // Cross-queue dependencies: wait for the real completion only — their
    // modeled ends were already folded into this command's modeled start.
    for (const Event& dep : command.deps) dep.state_->WaitReal();
    if (command.run) command.run();
    // Drop the closure before completion becomes observable: captured
    // resources (scratch handles parking back into the pool) must be
    // released by the time a host Wait()/Finish() returns, not when the
    // dispatcher happens to reach the next iteration.
    command.run = nullptr;
    command.done->MarkComplete();
  }
}

}  // namespace fkde
