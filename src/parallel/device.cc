#include "parallel/device.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace fkde {

namespace {

/// Measured simd/scalar throughput ratio of the fused contribution
/// kernel, installed by the KDE layer's calibration. Stored as an atomic
/// so benches can calibrate from one thread while another builds
/// profiles. 1.0 until calibration runs: an uncalibrated SimdCpu profile
/// models the same cost as the scalar CPU rather than guessing.
std::atomic<double> g_simd_throughput_ratio{1.0};

}  // namespace

void SetSimdThroughputRatio(double ratio) {
  if (ratio > 0.0) {
    g_simd_throughput_ratio.store(ratio, std::memory_order_relaxed);
  }
}

double SimdThroughputRatio() {
  return g_simd_throughput_ratio.load(std::memory_order_relaxed);
}

namespace internal {

std::shared_ptr<HazardChecker> EnvHazardChecker() {
  const char* env = std::getenv("HAZARD_STRICT");
  if (env == nullptr || env[0] == '\0' || std::strcmp(env, "0") == 0) {
    return nullptr;
  }
  return HazardChecker::Create(HazardMode::kStrict);
}

}  // namespace internal

void Device::EnableHazardChecking(HazardMode mode) {
  hazard_checker_ =
      mode == HazardMode::kOff ? nullptr : HazardChecker::Create(mode);
}

void Device::AttachHazardChecker(std::shared_ptr<HazardChecker> checker) {
  hazard_checker_ = std::move(checker);
}

DeviceProfile DeviceProfile::OpenClCpu() {
  DeviceProfile p;
  p.name = "cpu";
  // Intel OpenCL SDK on a quad-core Xeon E5620: heavyweight enqueues,
  // transfers are host-memory copies.
  p.launch_latency_s = 30e-6;
  p.transfer_latency_s = 5e-6;
  p.transfer_bandwidth = 20e9;
  // ~32K-point 8D model estimated in ~1 ms (paper Section 6.4):
  // 32768 * 8 / 1e-3 s ~= 2.6e8 point-attributes/s.
  p.compute_throughput = 2.56e8;
  return p;
}

DeviceProfile DeviceProfile::SimdCpu() {
  DeviceProfile p = OpenClCpu();
  p.name = "cpu-simd";
  p.kernel_backend = KernelBackend::kSimd;
  p.kernel_precision = KernelPrecision::kFloat;
  // Calibrated, not assumed: the KDE layer measures the fused
  // contribution kernel under both backends and installs the ratio; the
  // modeled cpu shard then speeds up by exactly what this machine's
  // vector units deliver. Without calibration (or without AVX2, where
  // the backend resolves to scalar anyway) the ratio is 1.0.
  if (CpuSupportsSimd()) {
    p.compute_throughput *= SimdThroughputRatio();
  }
  return p;
}

DeviceProfile DeviceProfile::SimulatedGtx460() {
  DeviceProfile p;
  p.name = "gpu";
  // Discrete GPU: higher per-launch and per-transfer latency (driver +
  // PCIe round trip), PCIe 2.0 x16 effective bandwidth, ~4x the CPU's
  // kernel throughput (the paper's observed speedup).
  p.launch_latency_s = 25e-6;
  p.transfer_latency_s = 20e-6;
  p.transfer_bandwidth = 6e9;
  // ~128K-point 8D model estimated in <1 ms: 131072 * 8 / 1e-3 ~= 1.0e9.
  p.compute_throughput = 1.05e9;
  return p;
}

double Device::BookLaunch(std::size_t global_size, double ops_per_item,
                          double deps_end_s) {
  std::lock_guard<std::mutex> lock(mu_);
  ledger_.kernel_launches += 1;
  // The host always pays the driver round trip for the submission.
  host_pos_s_ += profile_.launch_latency_s;
  overhead_s_ += profile_.launch_latency_s;
  // The kernel starts once the device is free, the submission has landed,
  // and every wait-list dependency has completed on the modeled timeline.
  const double start =
      std::max({device_pos_s_, host_pos_s_, deps_end_s});
  const double duration = static_cast<double>(global_size) * ops_per_item /
                          profile_.compute_throughput;
  device_pos_s_ = start + duration;
  busy_s_ += duration;
  return device_pos_s_;
}

double Device::BookTransfer(std::uint64_t bytes, bool to_device,
                            double deps_end_s) {
  std::lock_guard<std::mutex> lock(mu_);
  if (to_device) {
    ledger_.transfers_to_device += 1;
    ledger_.bytes_to_device += bytes;
  } else {
    ledger_.transfers_to_host += 1;
    ledger_.bytes_to_host += bytes;
  }
  host_pos_s_ += profile_.transfer_latency_s;
  overhead_s_ += profile_.transfer_latency_s;
  const double start =
      std::max({device_pos_s_, host_pos_s_, deps_end_s});
  const double duration =
      static_cast<double>(bytes) / profile_.transfer_bandwidth;
  device_pos_s_ = start + duration;
  busy_s_ += duration;
  return device_pos_s_;
}

void Device::SyncHostTo(double modeled_end_s) {
  std::lock_guard<std::mutex> lock(mu_);
  if (modeled_end_s > host_pos_s_) {
    const double stall = modeled_end_s - host_pos_s_;
    host_pos_s_ = modeled_end_s;
    overhead_s_ += stall;
    stall_s_ += stall;
  }
}

void Device::AdvanceHostTime(double seconds) {
  FKDE_CHECK_MSG(seconds >= 0.0, "host time cannot move backwards");
  std::lock_guard<std::mutex> lock(mu_);
  host_pos_s_ += seconds;  // External work: excluded from overhead_s_.
}

double Device::ModeledSeconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return overhead_s_;
}

double Device::HostStallSeconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stall_s_;
}

double Device::DeviceBusySeconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return busy_s_;
}

double Device::IdleGapFraction() const {
  std::lock_guard<std::mutex> lock(mu_);
  return overhead_s_ > 0.0 ? stall_s_ / overhead_s_ : 0.0;
}

void Device::ResetModeledTime() {
  std::lock_guard<std::mutex> lock(mu_);
  // The timeline positions stay monotone (pending commands keep their
  // modeled schedule); only the reported accumulators reset.
  overhead_s_ = 0.0;
  stall_s_ = 0.0;
  busy_s_ = 0.0;
}

void Device::ResetLedger() {
  std::lock_guard<std::mutex> lock(mu_);
  ledger_ = TransferLedger();
}

namespace {

/// Power-of-two size bucket (>= 256 doubles) for the scratch pool: keeps
/// the number of distinct free-lists small so steady-state workloads hit.
std::size_t ScratchBucket(std::size_t n) {
  std::size_t bucket = 256;
  while (bucket < n) bucket <<= 1;
  return bucket;
}

}  // namespace

ScratchBuffer Device::AcquireScratch(std::size_t n) {
  const std::size_t bucket = ScratchBucket(n);
  std::shared_ptr<internal::ScratchPool> pool = scratch_pool_;
  DeviceBuffer<double> buffer;
  bool reused = false;
  {
    std::lock_guard<std::mutex> lock(pool->mu);
    std::vector<DeviceBuffer<double>>& parked = pool->free_by_bucket[bucket];
    if (!parked.empty()) {
      buffer = std::move(parked.back());
      parked.pop_back();
      pool->stats.hits += 1;
      pool->stats.pooled_bytes -= bucket * sizeof(double);
      reused = true;
    } else {
      buffer = DeviceBuffer<double>(bucket);
      pool->stats.misses += 1;
    }
    pool->stats.outstanding += 1;
  }
  if (reused && hazard_checker_ != nullptr) {
    // The buffer keeps its registry id across park/reuse, but its
    // contents are stale again: reset its initialized-range tracking.
    hazard_checker_->OnScratchReused(buffer.buffer_id());
  }
  // The deleter owns a pool reference, so a handle outliving the device
  // still parks safely; the pool frees its contents when the last
  // reference (device or handle) drops. The checker reference is weak:
  // parks after the checker detached are not the checker's business.
  std::weak_ptr<HazardChecker> weak_checker = hazard_checker_;
  return ScratchBuffer(
      new DeviceBuffer<double>(std::move(buffer)),
      [pool, weak_checker](DeviceBuffer<double>* released) {
        if (std::shared_ptr<HazardChecker> checker = weak_checker.lock()) {
          checker->OnScratchParked(released->buffer_id());
        }
        {
          std::lock_guard<std::mutex> lock(pool->mu);
          pool->stats.outstanding -= 1;
          pool->stats.releases += 1;
          pool->stats.pooled_bytes += released->size() * sizeof(double);
          pool->free_by_bucket[released->size()].push_back(
              std::move(*released));
        }
        delete released;
      });
}

BufferPoolStats Device::scratch_pool_stats() const {
  std::lock_guard<std::mutex> lock(scratch_pool_->mu);
  return scratch_pool_->stats;
}

void Device::TrimScratchPool() {
  std::lock_guard<std::mutex> lock(scratch_pool_->mu);
  scratch_pool_->free_by_bucket.clear();
  scratch_pool_->stats.pooled_bytes = 0;
}

void Device::Launch(const char* kernel_name, std::size_t global_size,
                    double ops_per_item,
                    const std::function<void(std::size_t, std::size_t)>& body,
                    std::span<const BufferAccess> accesses) {
  default_queue_
      ->EnqueueLaunch(kernel_name, global_size, ops_per_item, body, accesses)
      .Wait();
}

double ReduceSum(Device* device, const DeviceBuffer<double>& buffer,
                 std::size_t offset, std::size_t n) {
  FKDE_CHECK_MSG(offset + n <= buffer.size(), "ReduceSum range exceeds buffer");
  if (n == 0) return 0.0;
  // Tree reduction with "work-group" size 256, mirroring the OpenCL
  // implementation: each level folds the active range by the group size
  // until one partial remains, then a single scalar read-back. The first
  // level reads the (retained) input; later levels ping-pong between two
  // scratch buffers so the input is never clobbered and concurrent groups
  // never write into another group's read range. Levels are enqueued
  // without intermediate waits (the in-order queue chains them); only the
  // final read-back blocks.
  constexpr std::size_t kGroup = kReduceGroupSize;
  const std::size_t first_groups = (n + kGroup - 1) / kGroup;
  CommandQueue* queue = device->default_queue();
  // Pooled scratch: reduction temporaries recycle across calls instead of
  // allocating per reduction. The final blocking read-back drains the
  // queue, so releasing the handles on return is safe.
  ScratchBuffer scratch_a = device->AcquireScratch(first_groups);
  ScratchBuffer scratch_b =
      device->AcquireScratch((first_groups + kGroup - 1) / kGroup);
  const double* in = buffer.device_data() + offset;
  const DeviceBuffer<double>* in_buf = &buffer;
  std::size_t in_off = offset;
  DeviceBuffer<double>* dst = scratch_a.get();
  DeviceBuffer<double>* spare = scratch_b.get();
  std::size_t active = n;
  for (;;) {
    const std::size_t groups = (active + kGroup - 1) / kGroup;
    double* out = dst->device_data();
    const std::size_t level_size = active;
    const double* level_in = in;
    auto body = [level_in, out, level_size](std::size_t begin,
                                            std::size_t end) {
      for (std::size_t g = begin; g < end; ++g) {
        const std::size_t lo = g * kGroup;
        const std::size_t hi = std::min(lo + kGroup, level_size);
        double acc = 0.0;
        for (std::size_t i = lo; i < hi; ++i) acc += level_in[i];
        out[g] = acc;
      }
    };
    const BufferAccess acc[] = {Reads(*in_buf, in_off, active),
                                Writes(*dst, 0, groups)};
    queue->EnqueueLaunch("reduce_sum_level", groups,
                         static_cast<double>(kGroup), body, acc);
    active = groups;
    if (active <= 1) break;
    in = dst->device_data();
    in_buf = dst;
    in_off = 0;
    std::swap(dst, spare);
  }
  double result = 0.0;
  device->CopyToHost(*dst, 0, 1, &result);
  return result;
}

Event EnqueueReduceSumSegments(CommandQueue* queue,
                               const DeviceBuffer<double>& buffer,
                               std::size_t offset, std::size_t segment_size,
                               std::size_t num_segments,
                               DeviceBuffer<double>* out,
                               std::size_t out_offset) {
  FKDE_CHECK(out != nullptr);
  FKDE_CHECK_MSG(offset + segment_size * num_segments <= buffer.size(),
                 "ReduceSumSegments range exceeds buffer");
  FKDE_CHECK_MSG(out_offset + num_segments <= out->size(),
                 "ReduceSumSegments output exceeds buffer");
  FKDE_CHECK_MSG(out->device_data() != buffer.device_data(),
                 "ReduceSumSegments output may not alias the input");
  if (num_segments == 0) return Event();
  constexpr std::size_t kGroup = kReduceGroupSize;
  Device* device = queue->device();

  // Same level structure per segment as ReduceSum, but every level folds
  // ALL segments in one launch: work item G handles group (G % groups) of
  // segment (G / groups). Levels ping-pong between two segment-major
  // scratch buffers; the final level (one group per segment) writes the
  // per-segment sums straight into `out`.
  if (segment_size == 0) {
    double* final_out = out->device_data() + out_offset;
    const BufferAccess acc[] = {Writes(*out, out_offset, num_segments)};
    return queue->EnqueueLaunch(
        "reduce_segments_zero", num_segments, 1.0,
        [final_out](std::size_t begin, std::size_t end) {
          for (std::size_t g = begin; g < end; ++g) final_out[g] = 0.0;
        },
        acc);
  }
  const std::size_t first_groups = (segment_size + kGroup - 1) / kGroup;
  // Pooled ping-pong scratch: each level's kernel body captures the
  // handles, so the buffers stay out of the pool until the last enqueued
  // level's command is destroyed, then recycle for the next reduction.
  ScratchBuffer scratch_a =
      device->AcquireScratch(num_segments * first_groups);
  ScratchBuffer scratch_b = device->AcquireScratch(
      num_segments * ((first_groups + kGroup - 1) / kGroup));
  const double* in = buffer.device_data() + offset;
  const DeviceBuffer<double>* in_buf = &buffer;
  std::size_t in_off = offset;
  std::size_t in_stride = segment_size;
  DeviceBuffer<double>* dst = scratch_a.get();
  DeviceBuffer<double>* spare = scratch_b.get();
  std::size_t active = segment_size;
  Event last;
  for (;;) {
    const std::size_t groups = (active + kGroup - 1) / kGroup;
    double* level_out = groups == 1 ? out->device_data() + out_offset
                                    : dst->device_data();
    const double* level_in = in;
    const std::size_t level_size = active;
    const std::size_t level_stride = in_stride;
    auto body = [scratch_a, scratch_b, level_in, level_out, level_size,
                 level_stride, groups](std::size_t begin, std::size_t end) {
      for (std::size_t item = begin; item < end; ++item) {
        const std::size_t seg = item / groups;
        const std::size_t lo = (item % groups) * kGroup;
        const std::size_t hi = std::min(lo + kGroup, level_size);
        const double* seg_in = level_in + seg * level_stride;
        double acc = 0.0;
        for (std::size_t i = lo; i < hi; ++i) acc += seg_in[i];
        level_out[item] = acc;
      }
      (void)scratch_a;
      (void)scratch_b;
    };
    const BufferAccess acc[] = {
        Reads(*in_buf, in_off, num_segments * level_stride),
        groups == 1 ? Writes(*out, out_offset, num_segments)
                    : Writes(*dst, 0, num_segments * groups)};
    last = queue->EnqueueLaunch("reduce_segments_level",
                                num_segments * groups,
                                static_cast<double>(kGroup), body, acc);
    if (groups == 1) break;
    active = groups;
    in = dst->device_data();
    in_buf = dst;
    in_off = 0;
    in_stride = groups;
    std::swap(dst, spare);
  }
  return last;
}

void ReduceSumSegments(Device* device, const DeviceBuffer<double>& buffer,
                       std::size_t offset, std::size_t segment_size,
                       std::size_t num_segments, DeviceBuffer<double>* out,
                       std::size_t out_offset) {
  EnqueueReduceSumSegments(device->default_queue(), buffer, offset,
                           segment_size, num_segments, out, out_offset)
      .Wait();
}

}  // namespace fkde
