#include "parallel/device.h"

namespace fkde {

DeviceProfile DeviceProfile::OpenClCpu() {
  DeviceProfile p;
  p.name = "cpu";
  // Intel OpenCL SDK on a quad-core Xeon E5620: heavyweight enqueues,
  // transfers are host-memory copies.
  p.launch_latency_s = 30e-6;
  p.transfer_latency_s = 5e-6;
  p.transfer_bandwidth = 20e9;
  // ~32K-point 8D model estimated in ~1 ms (paper Section 6.4):
  // 32768 * 8 / 1e-3 s ~= 2.6e8 point-attributes/s.
  p.compute_throughput = 2.56e8;
  return p;
}

DeviceProfile DeviceProfile::SimulatedGtx460() {
  DeviceProfile p;
  p.name = "gpu";
  // Discrete GPU: higher per-launch and per-transfer latency (driver +
  // PCIe round trip), PCIe 2.0 x16 effective bandwidth, ~4x the CPU's
  // kernel throughput (the paper's observed speedup).
  p.launch_latency_s = 25e-6;
  p.transfer_latency_s = 20e-6;
  p.transfer_bandwidth = 6e9;
  // ~128K-point 8D model estimated in <1 ms: 131072 * 8 / 1e-3 ~= 1.0e9.
  p.compute_throughput = 1.05e9;
  return p;
}

void Device::Launch(const char* kernel_name, std::size_t global_size,
                    double ops_per_item,
                    const std::function<void(std::size_t, std::size_t)>& body) {
  (void)kernel_name;  // Retained for debugging/tracing hooks.
  ledger_.kernel_launches += 1;
  modeled_seconds_ += profile_.launch_latency_s +
                      static_cast<double>(global_size) * ops_per_item /
                          profile_.compute_throughput;
  if (global_size == 0) return;
  // Grain keeps per-chunk scheduling cost negligible relative to work.
  const std::size_t grain = 1024;
  pool_->ParallelFor(global_size, grain, body);
}

void Device::LaunchOverlapped(
    const char* kernel_name, std::size_t global_size,
    const std::function<void(std::size_t, std::size_t)>& body) {
  (void)kernel_name;
  ledger_.kernel_launches += 1;
  modeled_seconds_ += profile_.launch_latency_s;
  if (global_size == 0) return;
  pool_->ParallelFor(global_size, 1024, body);
}

double ReduceSum(Device* device, const DeviceBuffer<double>& buffer,
                 std::size_t offset, std::size_t n, bool overlapped) {
  FKDE_CHECK_MSG(offset + n <= buffer.size(), "ReduceSum range exceeds buffer");
  if (n == 0) return 0.0;
  // Tree reduction with "work-group" size 256, mirroring the OpenCL
  // implementation: each level folds the active range by the group size
  // until one partial remains, then a single scalar read-back. The first
  // level reads the (retained) input; later levels ping-pong between two
  // scratch buffers so the input is never clobbered and concurrent groups
  // never write into another group's read range.
  constexpr std::size_t kGroup = kReduceGroupSize;
  const std::size_t first_groups = (n + kGroup - 1) / kGroup;
  DeviceBuffer<double> scratch_a = device->CreateBuffer<double>(first_groups);
  DeviceBuffer<double> scratch_b = device->CreateBuffer<double>(
      (first_groups + kGroup - 1) / kGroup);
  const double* in = buffer.device_data() + offset;
  DeviceBuffer<double>* dst = &scratch_a;
  DeviceBuffer<double>* spare = &scratch_b;
  std::size_t active = n;
  for (;;) {
    const std::size_t groups = (active + kGroup - 1) / kGroup;
    double* out = dst->device_data();
    const std::size_t level_size = active;
    const double* level_in = in;
    auto body = [level_in, out, level_size](std::size_t begin,
                                            std::size_t end) {
      for (std::size_t g = begin; g < end; ++g) {
        const std::size_t lo = g * kGroup;
        const std::size_t hi = std::min(lo + kGroup, level_size);
        double acc = 0.0;
        for (std::size_t i = lo; i < hi; ++i) acc += level_in[i];
        out[g] = acc;
      }
    };
    if (overlapped) {
      device->LaunchOverlapped("reduce_sum_level", groups, body);
    } else {
      device->Launch("reduce_sum_level", groups, static_cast<double>(kGroup),
                     body);
    }
    active = groups;
    if (active <= 1) break;
    in = dst->device_data();
    std::swap(dst, spare);
  }
  double result = 0.0;
  device->CopyToHost(*dst, 0, 1, &result);
  return result;
}

void ReduceSumSegments(Device* device, const DeviceBuffer<double>& buffer,
                       std::size_t offset, std::size_t segment_size,
                       std::size_t num_segments, DeviceBuffer<double>* out,
                       std::size_t out_offset, bool overlapped) {
  FKDE_CHECK(out != nullptr);
  FKDE_CHECK_MSG(offset + segment_size * num_segments <= buffer.size(),
                 "ReduceSumSegments range exceeds buffer");
  FKDE_CHECK_MSG(out_offset + num_segments <= out->size(),
                 "ReduceSumSegments output exceeds buffer");
  FKDE_CHECK_MSG(out->device_data() != buffer.device_data(),
                 "ReduceSumSegments output may not alias the input");
  if (num_segments == 0) return;
  constexpr std::size_t kGroup = kReduceGroupSize;

  // Same level structure per segment as ReduceSum, but every level folds
  // ALL segments in one launch: work item G handles group (G % groups) of
  // segment (G / groups). Levels ping-pong between two segment-major
  // scratch buffers; the final level (one group per segment) writes the
  // per-segment sums straight into `out`.
  const std::size_t first_groups = (segment_size + kGroup - 1) / kGroup;
  DeviceBuffer<double> scratch_a =
      device->CreateBuffer<double>(num_segments * first_groups);
  DeviceBuffer<double> scratch_b = device->CreateBuffer<double>(
      num_segments * ((first_groups + kGroup - 1) / kGroup));
  const double* in = buffer.device_data() + offset;
  std::size_t in_stride = segment_size;
  DeviceBuffer<double>* dst = &scratch_a;
  DeviceBuffer<double>* spare = &scratch_b;
  std::size_t active = segment_size;
  if (active == 0) {
    double* final_out = out->device_data() + out_offset;
    auto zero = [final_out](std::size_t begin, std::size_t end) {
      for (std::size_t g = begin; g < end; ++g) final_out[g] = 0.0;
    };
    if (overlapped) {
      device->LaunchOverlapped("reduce_segments_zero", num_segments, zero);
    } else {
      device->Launch("reduce_segments_zero", num_segments, 1.0, zero);
    }
    return;
  }
  for (;;) {
    const std::size_t groups = (active + kGroup - 1) / kGroup;
    double* level_out = groups == 1 ? out->device_data() + out_offset
                                    : dst->device_data();
    const double* level_in = in;
    const std::size_t level_size = active;
    const std::size_t level_stride = in_stride;
    auto body = [level_in, level_out, level_size, level_stride, groups](
                    std::size_t begin, std::size_t end) {
      for (std::size_t item = begin; item < end; ++item) {
        const std::size_t seg = item / groups;
        const std::size_t lo = (item % groups) * kGroup;
        const std::size_t hi = std::min(lo + kGroup, level_size);
        const double* seg_in = level_in + seg * level_stride;
        double acc = 0.0;
        for (std::size_t i = lo; i < hi; ++i) acc += seg_in[i];
        level_out[item] = acc;
      }
    };
    if (overlapped) {
      device->LaunchOverlapped("reduce_segments_level", num_segments * groups,
                               body);
    } else {
      device->Launch("reduce_segments_level", num_segments * groups,
                     static_cast<double>(kGroup), body);
    }
    if (groups == 1) break;
    active = groups;
    in = dst->device_data();
    in_stride = groups;
    std::swap(dst, spare);
  }
}

}  // namespace fkde
