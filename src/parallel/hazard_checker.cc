#include "parallel/hazard_checker.h"

#include <algorithm>
#include <sstream>
#include <tuple>

#include "common/logging.h"

namespace fkde {

namespace internal {

BufferRegistry& BufferRegistry::Global() {
  static BufferRegistry* registry = new BufferRegistry();
  return *registry;
}

std::uint64_t BufferRegistry::Register(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_id_++;
  alive_.emplace(id, bytes);
  return id;
}

void BufferRegistry::Release(std::uint64_t id) {
  // Notify outside the registry lock: observers take the checker lock,
  // and checkers query the registry while holding theirs — notifying
  // under mu_ would invert that order.
  std::vector<std::shared_ptr<HazardChecker>> observers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    alive_.erase(id);
    if (!observers_.empty()) {
      observers.reserve(observers_.size());
      std::size_t kept = 0;
      for (std::weak_ptr<HazardChecker>& weak : observers_) {
        if (std::shared_ptr<HazardChecker> checker = weak.lock()) {
          observers.push_back(std::move(checker));
          observers_[kept++] = std::move(weak);
        }
      }
      observers_.resize(kept);  // Prune expired checkers lazily.
    }
  }
  for (const std::shared_ptr<HazardChecker>& checker : observers) {
    checker->OnBufferReleased(id);
  }
}

bool BufferRegistry::Lookup(std::uint64_t id, std::size_t* bytes) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = alive_.find(id);
  if (it == alive_.end()) return false;
  if (bytes != nullptr) *bytes = it->second;
  return true;
}

std::uint64_t BufferRegistry::watermark() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_id_;
}

void BufferRegistry::AddObserver(std::weak_ptr<HazardChecker> observer) {
  std::lock_guard<std::mutex> lock(mu_);
  observers_.push_back(std::move(observer));
}

namespace {

bool StateComplete(const std::shared_ptr<EventState>& state) {
  if (!state) return true;
  std::lock_guard<std::mutex> lock(state->mu);
  return state->complete;
}

}  // namespace

}  // namespace internal

const char* HazardKindName(HazardKind kind) {
  switch (kind) {
    case HazardKind::kRaw:
      return "read-after-write race";
    case HazardKind::kWar:
      return "write-after-read race";
    case HazardKind::kWaw:
      return "write-after-write race";
    case HazardKind::kUseAfterFree:
      return "use-after-free";
    case HazardKind::kUseBeforeInit:
      return "use-before-initialization";
    case HazardKind::kLeakedScratch:
      return "scratch released in flight";
    case HazardKind::kUnwaitedReadback:
      return "unwaited readback";
  }
  return "unknown hazard";
}

std::shared_ptr<HazardChecker> HazardChecker::Create(HazardMode mode) {
  FKDE_CHECK_MSG(mode != HazardMode::kOff,
                 "create a checker with kDeferred or kStrict; kOff means "
                 "detach (Device::EnableHazardChecking(HazardMode::kOff))");
  std::shared_ptr<HazardChecker> checker(new HazardChecker(mode));
  internal::BufferRegistry::Global().AddObserver(checker);
  return checker;
}

void HazardChecker::MergeClock(Clock* clock, std::uint64_t queue,
                               std::uint64_t index) {
  auto it = std::lower_bound(
      clock->begin(), clock->end(), queue,
      [](const auto& entry, std::uint64_t q) { return entry.first < q; });
  if (it != clock->end() && it->first == queue) {
    it->second = std::max(it->second, index);
  } else {
    clock->insert(it, {queue, index});
  }
}

std::uint64_t HazardChecker::ClockAt(const Clock& clock, std::uint64_t queue) {
  auto it = std::lower_bound(
      clock.begin(), clock.end(), queue,
      [](const auto& entry, std::uint64_t q) { return entry.first < q; });
  return (it != clock.end() && it->first == queue) ? it->second : 0;
}

bool HazardChecker::HappensBefore(const CommandRef& ref, const Clock& clock) {
  return ClockAt(clock, ref.queue_id) >= ref.index;
}

std::string HazardChecker::DescribeRef(const CommandRef& ref) {
  std::ostringstream os;
  os << "'" << ref.name << "' (queue " << ref.queue_id << ", cmd "
     << ref.index << ")";
  return os.str();
}

void HazardChecker::AddReportLocked(HazardKind kind, std::uint64_t buffer_id,
                                    std::string message) {
  if (mode_ == HazardMode::kStrict) {
    FKDE_CHECK_MSG(false, "hazard detected: " + message);
  }
  reports_.push_back(HazardReport{kind, buffer_id, std::move(message)});
}

bool HazardChecker::OpaqueCoversLocked(const Clock& clock) const {
  for (const auto& [queue, min_index] : opaque_min_index_) {
    if (ClockAt(clock, queue) >= min_index) return true;
  }
  return false;
}

namespace {

using ByteRange = std::pair<std::size_t, std::size_t>;

/// Merges [a, b) into a sorted, disjoint range set.
void AddRange(std::vector<ByteRange>* set, std::size_t a, std::size_t b) {
  if (a >= b) return;
  auto it = set->begin();
  while (it != set->end() && it->second < a) ++it;
  if (it == set->end() || it->first > b) {
    set->insert(it, {a, b});
    return;
  }
  // Overlaps or abuts a run of existing ranges: fold them into one.
  it->first = std::min(it->first, a);
  it->second = std::max(it->second, b);
  auto next = it + 1;
  while (next != set->end() && next->first <= it->second) {
    it->second = std::max(it->second, next->second);
    next = set->erase(next);
  }
}

/// First sub-range of [a, b) not covered by the set; false if covered.
bool FindUncovered(const std::vector<ByteRange>& set, std::size_t a,
                   std::size_t b, ByteRange* gap) {
  std::size_t cursor = a;
  for (const ByteRange& range : set) {
    if (range.second <= cursor) continue;
    if (range.first > cursor) {
      *gap = {cursor, std::min(b, range.first)};
      return cursor < b;
    }
    cursor = range.second;
    if (cursor >= b) return false;
  }
  if (cursor < b) {
    *gap = {cursor, b};
    return true;
  }
  return false;
}

}  // namespace

void HazardChecker::CheckAccessLocked(const BufferAccess& access,
                                      const Clock& clock,
                                      const CommandRef& ref) {
  if (access.buffer_id == 0 || access.length_bytes == 0) return;
  std::size_t buffer_bytes = 0;
  internal::BufferRegistry& registry = internal::BufferRegistry::Global();
  if (!registry.Lookup(access.buffer_id, &buffer_bytes)) {
    std::ostringstream os;
    os << HazardKindName(HazardKind::kUseAfterFree) << ": " << DescribeRef(ref)
       << " declares access to buffer " << access.buffer_id << " which "
       << (access.buffer_id < registry.watermark() ? "was already released"
                                                   : "was never registered");
    AddReportLocked(HazardKind::kUseAfterFree, access.buffer_id, os.str());
    return;
  }
  const std::size_t a = std::min(access.offset_bytes, buffer_bytes);
  const std::size_t b =
      std::min(access.offset_bytes + access.length_bytes, buffer_bytes);
  if (a >= b) return;
  BufferState& bs = buffers_[access.buffer_id];
  const bool is_read = access.mode != AccessMode::kWrite;
  const bool is_write = access.mode != AccessMode::kRead;

  if (is_read) {
    ByteRange gap;
    if (FindUncovered(bs.init, a, b, &gap) && !OpaqueCoversLocked(clock)) {
      std::ostringstream os;
      os << HazardKindName(HazardKind::kUseBeforeInit) << ": "
         << DescribeRef(ref) << " reads bytes [" << gap.first << ", "
         << gap.second << ") of buffer " << access.buffer_id
         << " which no prior command initialized";
      AddReportLocked(HazardKind::kUseBeforeInit, access.buffer_id, os.str());
    }
  }

  // Partition the buffer's interval map so [a, b) is covered by exact
  // intervals, then check the new access against each interval's per-queue
  // writer/reader frontiers and fold it in.
  auto [lo, hi] = EnsureIntervals(&bs.intervals, a, b);
  // One report per (kind, conflicting command) even when the conflict
  // spans several intervals.
  std::vector<std::tuple<HazardKind, std::uint64_t, std::uint64_t>> reported;
  auto report_once = [&](HazardKind kind, const CommandRef& other,
                         const char* verb) {
    const std::tuple<HazardKind, std::uint64_t, std::uint64_t> key{
        kind, other.queue_id, other.index};
    if (std::find(reported.begin(), reported.end(), key) != reported.end()) {
      return;
    }
    reported.push_back(key);
    std::ostringstream os;
    os << HazardKindName(kind) << " on buffer " << access.buffer_id
       << " bytes [" << a << ", " << b << "): " << DescribeRef(ref) << " "
       << (is_write ? "writes" : "reads") << " data " << verb << " by "
       << DescribeRef(other) << " with no ordering path between them";
    AddReportLocked(kind, access.buffer_id, os.str());
  };
  for (std::size_t i = lo; i < hi; ++i) {
    Interval& interval = bs.intervals[i];
    for (const auto& [queue, writer] : interval.writers) {
      if (HappensBefore(writer, clock)) continue;
      report_once(is_write ? HazardKind::kWaw : HazardKind::kRaw, writer,
                  "written");
    }
    if (is_write) {
      for (const auto& [queue, reader] : interval.readers) {
        if (HappensBefore(reader, clock)) continue;
        report_once(HazardKind::kWar, reader, "still being read");
      }
      // A write supersedes the whole frontier: anything ordered after
      // this command is transitively ordered after every access it was
      // checked against (or the race was just reported).
      interval.writers.clear();
      interval.writers.emplace_back(ref.queue_id, ref);
      interval.readers.clear();
    } else {
      auto it = std::lower_bound(
          interval.readers.begin(), interval.readers.end(), ref.queue_id,
          [](const auto& entry, std::uint64_t q) { return entry.first < q; });
      if (it != interval.readers.end() && it->first == ref.queue_id) {
        it->second = ref;
      } else {
        interval.readers.insert(it, {ref.queue_id, ref});
      }
    }
  }
  if (is_write) AddRange(&bs.init, a, b);
  CoalesceIntervalsLocked(&bs.intervals, lo > 0 ? lo - 1 : 0, hi);
}

std::pair<std::size_t, std::size_t> HazardChecker::EnsureIntervals(
    std::vector<Interval>* intervals, std::size_t a, std::size_t b) {
  std::size_t i = 0;
  while (i < intervals->size() && (*intervals)[i].end <= a) ++i;
  if (i < intervals->size() && (*intervals)[i].begin < a) {
    Interval right = (*intervals)[i];
    right.begin = a;
    (*intervals)[i].end = a;
    intervals->insert(intervals->begin() + i + 1, std::move(right));
    ++i;
  }
  const std::size_t first = i;
  std::size_t cursor = a;
  while (cursor < b) {
    if (i < intervals->size() && (*intervals)[i].begin == cursor) {
      if ((*intervals)[i].end > b) {
        Interval right = (*intervals)[i];
        right.begin = b;
        (*intervals)[i].end = b;
        intervals->insert(intervals->begin() + i + 1, std::move(right));
      }
      cursor = (*intervals)[i].end;
      ++i;
    } else {
      std::size_t gap_end = b;
      if (i < intervals->size()) {
        gap_end = std::min(b, (*intervals)[i].begin);
      }
      Interval gap;
      gap.begin = cursor;
      gap.end = gap_end;
      intervals->insert(intervals->begin() + i, std::move(gap));
      cursor = gap_end;
      ++i;
    }
  }
  return {first, i};
}

bool HazardChecker::SameCommands(const Frontier& x, const Frontier& y) {
  if (x.size() != y.size()) return false;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i].first != y[i].first || x[i].second.index != y[i].second.index) {
      return false;
    }
  }
  return true;
}

void HazardChecker::CoalesceIntervalsLocked(std::vector<Interval>* intervals,
                                            std::size_t lo, std::size_t hi) {
  // Merge adjacent intervals whose frontiers record the same commands —
  // full-buffer writes re-collapse the map to one interval, bounding
  // fragmentation for cyclic write/read patterns.
  if (intervals->empty()) return;
  std::size_t i = std::min(lo, intervals->size() - 1);
  std::size_t end = std::min(hi + 1, intervals->size());
  while (i + 1 < end) {
    Interval& cur = (*intervals)[i];
    Interval& next = (*intervals)[i + 1];
    if (cur.end == next.begin && SameCommands(cur.writers, next.writers) &&
        SameCommands(cur.readers, next.readers)) {
      cur.end = next.end;
      intervals->erase(intervals->begin() + i + 1);
      --end;
    } else {
      ++i;
    }
  }
}

void HazardChecker::RecordCommand(
    const std::shared_ptr<internal::EventState>& state, CommandKind kind,
    const char* name, std::span<const BufferAccess> accesses,
    std::span<const Event> wait_list) {
  std::lock_guard<std::mutex> lock(mu_);
  Clock clock = queue_tails_[state->queue_id];
  for (const Event& e : wait_list) {
    if (!e.valid()) continue;
    const internal::EventState& dep = *e.state_;
    if (!dep.hazard_clock.empty()) {
      for (const auto& [queue, index] : dep.hazard_clock) {
        MergeClock(&clock, queue, index);
      }
    } else if (dep.queue_id != 0) {
      // Recorded before this checker attached: fall back to the direct
      // edge (its own transitive deps are unknown but already complete
      // or unchecked).
      MergeClock(&clock, dep.queue_id, dep.queue_index);
    }
  }
  MergeClock(&clock, state->queue_id, state->queue_index);
  state->hazard_clock = clock;
  queue_tails_[state->queue_id] = std::move(clock);
  const Clock& merged = state->hazard_clock;

  CommandRef ref;
  ref.queue_id = state->queue_id;
  ref.index = state->queue_index;
  ref.name = name != nullptr ? name : "<unnamed>";
  ref.state = state;

  if (kind == CommandKind::kKernel && accesses.empty()) {
    // Opaque kernel: indices grow monotonically, so the first recorded
    // one per queue is the earliest.
    opaque_min_index_.try_emplace(state->queue_id, state->queue_index);
  }
  for (const BufferAccess& access : accesses) {
    CheckAccessLocked(access, merged, ref);
  }
  if (kind == CommandKind::kCopyToHost) {
    readbacks_.push_back(std::move(ref));
  }
}

void HazardChecker::OnEventWaited(const internal::EventState& state) {
  if (state.queue_id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (!state.hazard_clock.empty()) {
    for (const auto& [queue, index] : state.hazard_clock) {
      std::uint64_t& frontier = waited_frontier_[queue];
      frontier = std::max(frontier, index);
    }
  } else {
    std::uint64_t& frontier = waited_frontier_[state.queue_id];
    frontier = std::max(frontier, state.queue_index);
  }
  if (readbacks_.size() > 1024) {
    // Opportunistic prune of covered readbacks so long strict runs stay
    // bounded.
    std::erase_if(readbacks_, [this](const CommandRef& ref) {
      return waited_frontier_[ref.queue_id] >= ref.index;
    });
  }
}

void HazardChecker::ReportInFlightLocked(std::uint64_t id, HazardKind kind,
                                         const char* what) {
  auto it = buffers_.find(id);
  if (it == buffers_.end()) return;
  for (const Interval& interval : it->second.intervals) {
    for (const Frontier* frontier : {&interval.writers, &interval.readers}) {
      for (const auto& [queue, ref] : *frontier) {
        if (internal::StateComplete(ref.state)) continue;
        std::ostringstream os;
        os << HazardKindName(kind) << ": buffer " << id << " " << what
           << " while " << DescribeRef(ref)
           << " still references bytes [" << interval.begin << ", "
           << interval.end << ") in flight";
        AddReportLocked(kind, id, os.str());
        return;
      }
    }
  }
}

void HazardChecker::OnBufferReleased(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  ReportInFlightLocked(id, HazardKind::kUseAfterFree, "released");
  buffers_.erase(id);
}

void HazardChecker::OnScratchParked(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  ReportInFlightLocked(id, HazardKind::kLeakedScratch,
                       "parked back into the scratch pool");
}

void HazardChecker::OnScratchReused(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buffers_.find(id);
  if (it == buffers_.end()) return;
  // The pool handoff is an ordering edge (the previous user's commands
  // completed before the park): logically a fresh buffer with stale
  // contents.
  it->second.intervals.clear();
  it->second.init.clear();
}

std::vector<HazardReport> HazardChecker::Validate() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HazardReport> out = reports_;
  std::erase_if(readbacks_, [this](const CommandRef& ref) {
    auto it = waited_frontier_.find(ref.queue_id);
    return it != waited_frontier_.end() && it->second >= ref.index;
  });
  for (const CommandRef& ref : readbacks_) {
    std::ostringstream os;
    os << HazardKindName(HazardKind::kUnwaitedReadback) << ": "
       << DescribeRef(ref)
       << " copies device data to host staging memory, but no "
          "Event::Wait()/Finish() ordered the host after it — the host "
          "may read torn staging";
    if (mode_ == HazardMode::kStrict) {
      FKDE_CHECK_MSG(false, "hazard detected: " + os.str());
    }
    out.push_back(
        HazardReport{HazardKind::kUnwaitedReadback, 0, os.str()});
  }
  return out;
}

std::vector<HazardReport> HazardChecker::reports() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reports_;
}

}  // namespace fkde
