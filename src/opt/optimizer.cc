#include "opt/optimizer.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <numeric>

#include "common/logging.h"

namespace fkde {

namespace {

void ClampIntoBounds(const Problem& problem, std::vector<double>* x) {
  for (std::size_t i = 0; i < x->size(); ++i) {
    (*x)[i] = std::clamp((*x)[i], problem.lower[i], problem.upper[i]);
  }
}

double InfNorm(std::span<const double> v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

double Dot(std::span<const double> a, std::span<const double> b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

/// Projected-gradient convergence measure: ||x - P(x - g)||_inf, which is
/// zero exactly at a KKT point of the box-constrained problem.
double ProjectedGradientNorm(const Problem& problem,
                             std::span<const double> x,
                             std::span<const double> g) {
  double m = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double stepped =
        std::clamp(x[i] - g[i], problem.lower[i], problem.upper[i]);
    m = std::max(m, std::abs(x[i] - stepped));
  }
  return m;
}

void ValidateProblem(const Problem& problem) {
  FKDE_CHECK_MSG(static_cast<bool>(problem.objective),
                 "problem has no objective");
  FKDE_CHECK_MSG(problem.lower.size() == problem.upper.size(),
                 "bound arity mismatch");
  FKDE_CHECK_MSG(!problem.lower.empty(), "zero-dimensional problem");
  for (std::size_t i = 0; i < problem.lower.size(); ++i) {
    FKDE_CHECK_MSG(problem.lower[i] <= problem.upper[i],
                   "inverted bounds in problem");
    FKDE_CHECK_MSG(std::isfinite(problem.lower[i]) &&
                       std::isfinite(problem.upper[i]),
                   "bounds must be finite");
  }
}

}  // namespace

OptimizeResult MinimizeLbfgsb(const Problem& problem,
                              std::span<const double> x0,
                              const LocalOptions& options) {
  ValidateProblem(problem);
  const std::size_t d = problem.dims();
  FKDE_CHECK_MSG(x0.size() == d, "x0 arity mismatch");

  OptimizeResult result;
  std::vector<double> x(x0.begin(), x0.end());
  ClampIntoBounds(problem, &x);

  std::vector<double> g(d), g_new(d), x_new(d), direction(d);
  double f = problem.objective(x, g);
  ++result.evaluations;

  // L-BFGS history of (s, y, rho) triples, newest at the back.
  struct Pair {
    std::vector<double> s, y;
    double rho;
  };
  std::deque<Pair> history;

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    ++result.iterations;
    if (ProjectedGradientNorm(problem, x, g) <= options.gradient_tolerance) {
      result.converged = true;
      break;
    }

    // Two-loop recursion for d = -H * g.
    std::copy(g.begin(), g.end(), direction.begin());
    std::vector<double> alpha(history.size());
    for (std::size_t k = history.size(); k-- > 0;) {
      const Pair& p = history[k];
      alpha[k] = p.rho * Dot(p.s, direction);
      for (std::size_t i = 0; i < d; ++i) direction[i] -= alpha[k] * p.y[i];
    }
    if (!history.empty()) {
      const Pair& last = history.back();
      const double yy = Dot(last.y, last.y);
      const double gamma = yy > 0.0 ? Dot(last.s, last.y) / yy : 1.0;
      for (double& v : direction) v *= gamma;
    }
    for (std::size_t k = 0; k < history.size(); ++k) {
      const Pair& p = history[k];
      const double beta = p.rho * Dot(p.y, direction);
      for (std::size_t i = 0; i < d; ++i) {
        direction[i] += (alpha[k] - beta) * p.s[i];
      }
    }
    for (double& v : direction) v = -v;

    // Fall back to steepest descent when the direction is not a descent
    // direction (can happen with noisy curvature pairs near bounds).
    if (Dot(direction, g) >= 0.0) {
      history.clear();
      for (std::size_t i = 0; i < d; ++i) direction[i] = -g[i];
    }

    // Projected backtracking line search with the Armijo condition
    // measured against the *actual* step (after projection).
    double step = history.empty() ? 1.0 / std::max(1.0, InfNorm(g)) : 1.0;
    constexpr double kArmijo = 1e-4;
    double f_new = f;
    bool accepted = false;
    for (std::size_t ls = 0; ls < options.max_line_search_steps; ++ls) {
      for (std::size_t i = 0; i < d; ++i) {
        x_new[i] = std::clamp(x[i] + step * direction[i], problem.lower[i],
                              problem.upper[i]);
      }
      double gd = 0.0;  // g . (x_new - x), the projected directional deriv.
      double moved = 0.0;
      for (std::size_t i = 0; i < d; ++i) {
        gd += g[i] * (x_new[i] - x[i]);
        moved += std::abs(x_new[i] - x[i]);
      }
      if (moved == 0.0) break;  // Stuck on the boundary.
      f_new = problem.objective(x_new, g_new);
      ++result.evaluations;
      if (std::isfinite(f_new) && f_new <= f + kArmijo * gd) {
        accepted = true;
        break;
      }
      step *= 0.5;
    }
    if (!accepted) break;  // Line search failed: local flatness/noise.

    // Curvature update.
    Pair pair;
    pair.s.resize(d);
    pair.y.resize(d);
    for (std::size_t i = 0; i < d; ++i) {
      pair.s[i] = x_new[i] - x[i];
      pair.y[i] = g_new[i] - g[i];
    }
    const double sy = Dot(pair.s, pair.y);
    // Scale-invariant curvature condition: accept the pair when s and y
    // are positively aligned relative to their magnitudes. An absolute
    // threshold would reject every pair for tiny-scale objectives (the
    // bandwidth losses here are O(1e-6)) and degrade to steepest descent.
    const double s_norm = std::sqrt(Dot(pair.s, pair.s));
    const double y_norm = std::sqrt(Dot(pair.y, pair.y));
    if (sy > 1e-10 * s_norm * y_norm && y_norm > 0.0) {
      pair.rho = 1.0 / sy;
      history.push_back(std::move(pair));
      if (history.size() > options.history) history.pop_front();
    }

    const double improvement = f - f_new;
    x.swap(x_new);
    g.swap(g_new);
    f = f_new;
    if (improvement >= 0.0 &&
        improvement <= options.f_tolerance * (std::abs(f) + 1e-12)) {
      result.converged = true;
      break;
    }
  }

  result.x = std::move(x);
  result.f = f;
  return result;
}

OptimizeResult MinimizeMlsl(const Problem& problem,
                            std::span<const double> x0, Rng* rng,
                            const GlobalOptions& global_options,
                            const LocalOptions& local_options) {
  ValidateProblem(problem);
  const std::size_t d = problem.dims();

  // Always refine the caller's start first — in the bandwidth problem this
  // is Scott's rule, usually already in the right basin.
  OptimizeResult best = MinimizeLbfgsb(problem, x0, local_options);
  std::size_t total_iterations = best.iterations;
  std::size_t total_evaluations = best.evaluations;

  double diagonal = 0.0;
  for (std::size_t i = 0; i < d; ++i) {
    const double e = problem.upper[i] - problem.lower[i];
    diagonal += e * e;
  }
  diagonal = std::sqrt(diagonal);
  const double link_radius =
      global_options.link_radius_fraction * std::max(diagonal, 1e-300);

  struct Sample {
    std::vector<double> x;
    double f;
  };
  std::vector<std::vector<double>> searched_starts;
  searched_starts.emplace_back(x0.begin(), x0.end());

  std::vector<double> no_grad;  // Sampling phase uses value-only calls.
  for (std::size_t round = 0; round < global_options.num_rounds; ++round) {
    std::vector<Sample> samples(global_options.num_samples);
    for (auto& sample : samples) {
      sample.x.resize(d);
      for (std::size_t i = 0; i < d; ++i) {
        sample.x[i] = rng->Uniform(problem.lower[i], problem.upper[i]);
      }
      sample.f = problem.objective(sample.x, no_grad);
      ++total_evaluations;
    }
    std::sort(samples.begin(), samples.end(),
              [](const Sample& a, const Sample& b) { return a.f < b.f; });

    std::size_t started = 0;
    for (const Sample& sample : samples) {
      if (started >= global_options.starts_per_round) break;
      if (!std::isfinite(sample.f)) continue;
      // Single-linkage criterion: skip samples close to an already
      // searched start (they would converge to the same minimum).
      bool linked = false;
      for (const auto& start : searched_starts) {
        double dist2 = 0.0;
        for (std::size_t i = 0; i < d; ++i) {
          const double delta = sample.x[i] - start[i];
          dist2 += delta * delta;
        }
        if (std::sqrt(dist2) < link_radius) {
          linked = true;
          break;
        }
      }
      if (linked) continue;

      searched_starts.push_back(sample.x);
      ++started;
      OptimizeResult local = MinimizeLbfgsb(problem, sample.x, local_options);
      total_iterations += local.iterations;
      total_evaluations += local.evaluations;
      if (local.f < best.f) best = std::move(local);
    }
  }

  best.iterations = total_iterations;
  best.evaluations = total_evaluations;
  return best;
}

double MaxGradientError(const Objective& objective, std::span<const double> x,
                        double step) {
  const std::size_t d = x.size();
  std::vector<double> analytic(d);
  std::vector<double> point(x.begin(), x.end());
  (void)objective(point, analytic);

  std::vector<double> no_grad;
  double worst = 0.0;
  for (std::size_t i = 0; i < d; ++i) {
    const double saved = point[i];
    const double h = step * std::max(1.0, std::abs(saved));
    point[i] = saved + h;
    const double f_plus = objective(point, no_grad);
    point[i] = saved - h;
    const double f_minus = objective(point, no_grad);
    point[i] = saved;
    const double numeric = (f_plus - f_minus) / (2.0 * h);
    const double scale =
        std::max({std::abs(numeric), std::abs(analytic[i]), 1e-8});
    worst = std::max(worst, std::abs(numeric - analytic[i]) / scale);
  }
  return worst;
}

}  // namespace fkde
