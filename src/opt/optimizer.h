/// \file optimizer.h
/// \brief Bound-constrained numerical optimization.
///
/// The paper plugs its bandwidth-selection problem (eq. 5) into NLopt,
/// using MLSL [24] for a coarse global search followed by L-BFGS-B [8] for
/// local refinement. NLopt is not available here, so this module provides
/// from-scratch equivalents:
///
///  * `MinimizeLbfgsb` — projected limited-memory BFGS with Armijo
///    backtracking, the workhorse local solver for box constraints.
///  * `MinimizeMlsl` — a multi-level single-linkage style multistart
///    wrapper: sample the box, start local searches from promising
///    non-clustered points, keep the best minimum.

#ifndef FKDE_OPT_OPTIMIZER_H_
#define FKDE_OPT_OPTIMIZER_H_

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace fkde {

/// \brief Differentiable objective: returns f(x) and, when `grad` is
/// non-empty, writes the gradient into it. `grad.size()` is either 0 or
/// `x.size()`.
using Objective =
    std::function<double(std::span<const double> x, std::span<double> grad)>;

/// \brief A box-constrained minimization problem.
struct Problem {
  Objective objective;
  std::vector<double> lower;  ///< Per-coordinate lower bounds.
  std::vector<double> upper;  ///< Per-coordinate upper bounds.

  std::size_t dims() const { return lower.size(); }
};

/// \brief Knobs for the local solver.
struct LocalOptions {
  std::size_t max_iterations = 200;
  std::size_t history = 8;           ///< L-BFGS memory (m).
  double gradient_tolerance = 1e-8;  ///< On the projected gradient, inf-norm.
  double f_tolerance = 1e-12;        ///< Relative improvement stop.
  std::size_t max_line_search_steps = 40;
};

/// \brief Knobs for the global (multistart) solver.
struct GlobalOptions {
  std::size_t num_samples = 64;   ///< Random starting candidates per round.
  std::size_t num_rounds = 2;
  std::size_t starts_per_round = 4;  ///< Local searches per round.
  /// Fraction of the box diagonal within which a worse sample is linked to
  /// a better one and skipped (the "single linkage" criterion).
  double link_radius_fraction = 0.1;
};

/// \brief Outcome of an optimization run.
struct OptimizeResult {
  std::vector<double> x;       ///< Best point found (always within bounds).
  double f = 0.0;              ///< Objective value at x.
  std::size_t iterations = 0;  ///< Local-solver iterations (summed).
  std::size_t evaluations = 0; ///< Objective evaluations (summed).
  bool converged = false;      ///< Projected-gradient tolerance reached.
};

/// Minimizes `problem` starting from `x0` with projected L-BFGS.
/// `x0` is clamped into the bounds first. Requires finite bounds with
/// lower <= upper and a gradient-providing objective.
OptimizeResult MinimizeLbfgsb(const Problem& problem,
                              std::span<const double> x0,
                              const LocalOptions& options = {});

/// Global multistart minimization: MLSL-style sampling plus local
/// refinement from `x0` and the best non-linked samples. Deterministic for
/// a fixed `rng` state.
OptimizeResult MinimizeMlsl(const Problem& problem,
                            std::span<const double> x0, Rng* rng,
                            const GlobalOptions& global_options = {},
                            const LocalOptions& local_options = {});

/// \brief Compares the objective's analytic gradient against central
/// finite differences at `x`; returns the maximum relative component error.
/// Used by tests to validate the closed-form KDE gradients of Appendix C.
double MaxGradientError(const Objective& objective, std::span<const double> x,
                        double step = 1e-5);

}  // namespace fkde

#endif  // FKDE_OPT_OPTIMIZER_H_
