/// \file estimator.h
/// \brief Common interface for all multidimensional selectivity estimators.
///
/// The evaluation (Section 6) compares five estimators — three KDE
/// variants, SCV-KDE, and the STHoles histogram — under one protocol:
/// estimate, execute, feed back the true selectivity, apply database
/// update notifications. This interface is that protocol; the
/// `FeedbackDriver` (runtime/driver.h) and every benchmark run against it.

#ifndef FKDE_ESTIMATOR_ESTIMATOR_H_
#define FKDE_ESTIMATOR_ESTIMATOR_H_

#include <cstdint>
#include <span>
#include <string>

#include "data/box.h"

namespace fkde {

/// \brief Abstract multidimensional range-selectivity estimator.
///
/// Selectivities are fractions in [0, 1] of the relation's cardinality.
/// Implementations must tolerate feedback and update notifications arriving
/// in any order relative to estimates (the database is free to reorder).
class SelectivityEstimator {
 public:
  virtual ~SelectivityEstimator() = default;

  /// Short name for reports ("kde_batch", "stholes", ...).
  virtual std::string name() const = 0;

  /// Dimensionality of the relation this estimator models.
  virtual std::size_t dims() const = 0;

  /// Estimates the fraction of tuples inside `box`.
  virtual double EstimateSelectivity(const Box& box) = 0;

  /// Query feedback: after the database executed the query, the true
  /// selectivity of `box` is reported back. Self-tuning estimators use
  /// this to refine their model; static ones may ignore it.
  virtual void ObserveTrueSelectivity(const Box& box, double selectivity) {
    (void)box;
    (void)selectivity;
  }

  /// Notification: `row` was inserted. `table_rows_after` is the relation
  /// cardinality after the insert (needed by reservoir sampling).
  virtual void OnInsert(std::span<const double> row,
                        std::size_t table_rows_after) {
    (void)row;
    (void)table_rows_after;
  }

  /// Notification: some rows were deleted. `table_rows_after` is the
  /// relation cardinality after the delete. Estimators without immediate
  /// delete handling (e.g. Karma-based maintenance) may ignore this and
  /// converge through feedback instead.
  virtual void OnDelete(std::size_t rows_deleted,
                        std::size_t table_rows_after) {
    (void)rows_deleted;
    (void)table_rows_after;
  }

  /// Approximate model footprint in bytes (for the d*4kB budget parity of
  /// Section 6.2).
  virtual std::size_t ModelBytes() const = 0;
};

}  // namespace fkde

#endif  // FKDE_ESTIMATOR_ESTIMATOR_H_
